//! Engine throughput benchmark — the perf trajectory artifact.
//!
//! Measures the three layers of the event-engine overhaul and writes
//! `BENCH_engine.json` (see README "Benchmarks"):
//!
//! 1. **queue_ops** — pure event-queue operation throughput: the seed's
//!    `BinaryHeap + 2×HashSet` design (replicated below verbatim) vs the
//!    slab-indexed 4-ary-heap queue, on a hold-model workload with a
//!    cancel/reschedule mix.
//! 2. **slot_engine** — whole-simulator throughput (simulated seconds per
//!    wall second) on a fig5-scale scenario: naive slot-per-event engine
//!    vs idle-slot skipping. Results are byte-identical (tested in
//!    `engine_equivalence.rs`); only the wall clock differs.
//! 3. **batch** — a multi-seed fig5-scale batch: the seed's serial naive
//!    loop vs the overhauled engine with the parallel runner.
//! 4. **next_hop** — the per-packet forwarding decision: the historical
//!    neighbour scan over the shared distance table (replicated below)
//!    vs the flat per-view next-hop table (PR 2), which turns every
//!    query into one array load. Routes are identical; only the cost per
//!    forwarded packet changes.
//! 5. **scale** — the dynamics/energy-re-advertisement path at 100+
//!    nodes: incremental rebuilds (masked-truth edits + weighted-APSP
//!    repair) vs the legacy from-scratch rebuilds (O(n²) truth + O(n³)
//!    weighted Dijkstra per change), measured both at the routing
//!    component level and over a whole catalog-scale lifetime run.
//!    Results are byte-identical between modes (pinned by
//!    `engine_equivalence::incremental_rebuilds_identical_to_scratch_rebuilds`);
//!    only the wall clock differs.
//! 6. **mobility** — the per-tick cost of *moving* topologies at n ∈
//!    {64, 100, 256}: spatial-grid neighbour discovery vs the brute-force
//!    all-pairs scan, and the whole diffed tick (geometry diff +
//!    masked-truth patch + affected-region BFS repair + column-
//!    incremental next-hop rebuild) vs the scratch path. Byte-identical
//!    results (pinned by the `mobile` tests and
//!    `engine_equivalence::mobile_incremental_rebuilds_identical_to_scratch`);
//!    only the wall clock differs.
//! 7. **parallel** — the partitioned flood-plane engine: the n = 256
//!    advert+churn flood workload and the catalog's 121-node lifetime run
//!    at `workers` ∈ {1, 2, 4}. Results are byte-identical across worker
//!    counts (pinned by `engine_equivalence` and the fuzz oracle); each
//!    cell reports measured wall clock *and* the fan-outs' critical-path
//!    speedup bound (Σ busy / Σ critical) — the honest number when the
//!    host has fewer cores than workers (`host_threads` says which).
//!
//! Run: `cargo run --release -p jtp-bench --bin engine_bench -- --quick
//! --json BENCH_engine.json`. `--section <name>` (repeatable) restricts
//! the run to a named section — `queue_ops`, `slot_engine`, `batch`,
//! `next_hop`, `scale`, `mobility`, `parallel` or `events` — and
//! **fails loudly** on an unknown name.

use jtp_bench::Args;
use jtp_events::{EventCounters, NoopSubscriber, Subscriber, TimeAccountant};
use jtp_netsim::runner::try_run_subscribed;
use jtp_netsim::topology::{
    adjacency_from_positions, adjacency_from_positions_brute, edges_from_positions, field_for,
    geometry_edge_diff, place_nodes,
};
use jtp_netsim::{
    cluster_spec_for, run_experiment, ExperimentConfig, FlowSpec, MaskedTruth, ReportRecorder,
    RoutingBackendKind, Scenario, TopologyKind, TraceConfig, TraceSubscriber, TransportKind,
};
use jtp_phys::mobility::MobilityModel;
use jtp_phys::{PathLoss, Point, RandomWaypoint};
use jtp_routing::{Adjacency, BackendSelect, LinkState, UNREACHABLE};
use jtp_sim::{EventQueue, NodeId, SimDuration, SimRng, SimTime};
use serde::Serialize;
use std::time::Instant;

/// Verbatim replica of the seed's event queue (pre-overhaul) so the
/// before/after comparison stays runnable forever.
mod baseline {
    use jtp_sim::SimTime;
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
    pub struct EventId(u64);

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        #[allow(dead_code)] // the seed carried (and never set) this flag
        cancelled: bool,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct BaselineQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        cancelled: HashSet<u64>,
        pending: HashSet<u64>,
        next_seq: u64,
        now: SimTime,
        popped: u64,
    }

    impl<E> BaselineQueue<E> {
        pub fn new() -> Self {
            BaselineQueue {
                heap: BinaryHeap::new(),
                cancelled: HashSet::new(),
                pending: HashSet::new(),
                next_seq: 0,
                now: SimTime::ZERO,
                popped: 0,
            }
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
            assert!(at >= self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.insert(seq);
            self.heap.push(Entry {
                time: at,
                seq,
                cancelled: false,
                event,
            });
            EventId(seq)
        }

        pub fn cancel(&mut self, id: EventId) -> bool {
            if !self.pending.remove(&id.0) {
                return false;
            }
            self.cancelled.insert(id.0)
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(entry) = self.heap.pop() {
                if self.cancelled.remove(&entry.seq) {
                    continue;
                }
                self.pending.remove(&entry.seq);
                self.now = entry.time;
                self.popped += 1;
                return Some((entry.time, entry.event));
            }
            None
        }
    }
}

/// Hold-model workload: keep `fill` events pending; each step pops the
/// earliest and schedules a replacement; every third step also schedules
/// and immediately cancels a timer (the reschedule pattern the skipping
/// engine leans on). Identical op sequence for both queues.
struct Hold {
    state: u64,
}

impl Hold {
    fn new() -> Self {
        Hold { state: 0x9E37_79B9 }
    }

    fn next_offset(&mut self) -> u64 {
        // xorshift64* — cheap, identical sequence for both queues.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        (self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) % 100_000
    }
}

fn bench_baseline_queue(fill: usize, steps: u64) -> f64 {
    let mut q = baseline::BaselineQueue::new();
    let mut rng = Hold::new();
    for i in 0..fill {
        q.schedule_at(SimTime::from_micros(rng.next_offset()), i as u64);
    }
    let start = Instant::now();
    for step in 0..steps {
        let (t, _) = q.pop().expect("hold model never drains");
        let at = SimTime::from_micros(t.as_micros() + rng.next_offset());
        q.schedule_at(at, step);
        if step % 3 == 0 {
            let id = q.schedule_at(at, u64::MAX);
            q.cancel(id);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    std::hint::black_box(q.now());
    steps as f64 / wall
}

fn bench_indexed_queue(fill: usize, steps: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Hold::new();
    for i in 0..fill {
        q.schedule_at(SimTime::from_micros(rng.next_offset()), i as u64);
    }
    let start = Instant::now();
    for step in 0..steps {
        let (t, _) = q.pop().expect("hold model never drains");
        let at = SimTime::from_micros(t.as_micros() + rng.next_offset());
        q.schedule_at(at, step);
        if step % 3 == 0 {
            let id = q.schedule_at(at, u64::MAX);
            q.cancel(id);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    std::hint::black_box(q.now());
    steps as f64 / wall
}

/// Fig. 5-scale scenario: 8-node chain, two long-lived competing flows.
fn fig5_scenario(seed: u64, duration_s: f64, skipping: bool) -> ExperimentConfig {
    let n = 8;
    let mut cfg = ExperimentConfig::linear(n)
        .transport(TransportKind::Jtp)
        .duration_s(duration_s)
        .seed(seed)
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(50),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        })
        .flow(FlowSpec {
            src: NodeId(0),
            dst: NodeId(n as u32 - 1),
            start: SimDuration::from_secs(50),
            packets: u32::MAX / 2,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    cfg.idle_slot_skipping = skipping;
    cfg
}

fn time_runs(cfgs: &[ExperimentConfig]) -> f64 {
    let start = Instant::now();
    for cfg in cfgs {
        std::hint::black_box(run_experiment(cfg));
    }
    start.elapsed().as_secs_f64()
}

#[derive(Serialize)]
struct QueueOps {
    pending: usize,
    baseline_events_per_sec: f64,
    indexed_events_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SlotEngine {
    scenario: String,
    simulated_s: f64,
    legacy_wall_s: f64,
    overhauled_wall_s: f64,
    legacy_sim_s_per_wall_s: f64,
    overhauled_sim_s_per_wall_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct NextHopBench {
    nodes: usize,
    extra_edges: usize,
    queries: u64,
    scan_queries_per_sec: f64,
    cached_queries_per_sec: f64,
    speedup: f64,
}

/// Replica of the pre-PR-2 `next_hop`: scan the source's neighbours for
/// the one minimising `(distance-to-dst, id)` over the shared APSP table.
fn scan_next_hop(adj: &Adjacency, dist: &[Vec<u16>], from: NodeId, dst: NodeId) -> Option<NodeId> {
    if from == dst {
        return None;
    }
    let mut best: Option<(u16, NodeId)> = None;
    for &v in adj.neighbors(from) {
        let d = dist[v.index()][dst.index()];
        if d == UNREACHABLE {
            continue;
        }
        if best.is_none_or(|(bd, bid)| (d, v) < (bd, bid)) {
            best = Some((d, v));
        }
    }
    best.map(|(_, v)| v)
}

/// Next-hop decision throughput: historical neighbour scan vs the flat
/// per-view hop table, over an identical pseudo-random query stream on a
/// random connected graph.
fn bench_next_hop(nodes: usize, extra_edges: usize, queries: u64) -> NextHopBench {
    // Random connected graph: a shuffled spanning chain plus extra edges.
    let mut rng = SimRng::derive(2024, "nexthop-bench");
    let mut order: Vec<u32> = (0..nodes as u32).collect();
    rng.shuffle(&mut order);
    let mut adj = Adjacency::new(nodes);
    for w in order.windows(2) {
        adj.set_edge(NodeId(w[0]), NodeId(w[1]), true);
    }
    let mut added = 0;
    while added < extra_edges {
        let a = rng.below(nodes) as u32;
        let b = rng.below(nodes) as u32;
        if a != b && !adj.has_edge(NodeId(a), NodeId(b)) {
            adj.set_edge(NodeId(a), NodeId(b), true);
            added += 1;
        }
    }
    let dist = adj.all_pairs_distances();
    let ls = LinkState::new(&adj, SimDuration::from_secs(5));

    // Correctness cross-check on the full pair grid before timing.
    for s in 0..nodes as u32 {
        for d in 0..nodes as u32 {
            assert_eq!(
                ls.next_hop(NodeId(s), NodeId(d)),
                scan_next_hop(&adj, &dist, NodeId(s), NodeId(d)),
                "cache and scan disagree for {s}->{d}"
            );
        }
    }

    let mut stream = Hold::new();
    let mut pairs = Vec::with_capacity(4096);
    for _ in 0..4096 {
        let s = (stream.next_offset() % nodes as u64) as u32;
        let d = (stream.next_offset() % nodes as u64) as u32;
        pairs.push((NodeId(s), NodeId(d)));
    }

    let time_qps = |f: &dyn Fn(NodeId, NodeId) -> Option<NodeId>| {
        let mut sink = 0u64;
        // Warm.
        for &(s, d) in &pairs {
            sink ^= f(s, d).map_or(0, |v| v.0 as u64);
        }
        let start = Instant::now();
        for i in 0..queries {
            let (s, d) = pairs[(i % pairs.len() as u64) as usize];
            sink ^= f(s, d).map_or(0, |v| v.0 as u64);
        }
        let wall = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        queries as f64 / wall
    };
    let scan_qps = time_qps(&|s, d| scan_next_hop(&adj, &dist, s, d));
    let cached_qps = time_qps(&|s, d| ls.next_hop(s, d));

    let out = NextHopBench {
        nodes,
        extra_edges,
        queries,
        scan_queries_per_sec: scan_qps,
        cached_queries_per_sec: cached_qps,
        speedup: cached_qps / scan_qps,
    };
    println!(
        "next-hop (n={nodes:>3})            : scan {scan_qps:>12.0} q/s | cached {cached_qps:>12.0} q/s | speedup {:.2}x",
        out.speedup
    );
    out
}

#[derive(Serialize)]
struct ScaleCell {
    scenario: String,
    nodes: usize,
    /// Substrate changes applied (advertisements + churn events, or the
    /// simulated seconds of the whole-run cells).
    work: String,
    scratch_wall_s: f64,
    incremental_wall_s: f64,
    speedup: f64,
}

/// One advertisement round of the synthetic drain model: node `i`'s
/// weight walks up through quantisation levels at its own rate and
/// stagger, so each round changes a *few* weights — the advert shape the
/// energy subsystem floods (levels are coarse precisely so that
/// re-floods stay rare; see `EnergyRoutingConfig`).
fn drained_weights(n: usize, round: u64, rounds: u64) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let rate = 0.7 + (i % 16) as f64 / 24.0;
            let stagger = (i % 29) as f64 / 29.0;
            1 + ((round as f64 * rate / rounds as f64) * 4.0 - stagger)
                .max(0.0)
                .floor() as u16
        })
        .collect()
}

/// A `cols × rows` 4-connected lattice, optionally with one edge removed.
fn lattice_adj(cols: usize, rows: usize, blocked: Option<(u32, u32)>) -> Adjacency {
    let mut adj = Adjacency::new(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            let i = (r * cols + c) as u32;
            if c + 1 < cols {
                adj.set_edge(NodeId(i), NodeId(i + 1), true);
            }
            if r + 1 < rows {
                adj.set_edge(NodeId(i), NodeId(i + cols as u32), true);
            }
        }
    }
    if let Some((a, b)) = blocked {
        adj.set_edge(NodeId(a), NodeId(b), false);
    }
    adj
}

/// Routing-component cell: a `cols × rows` lattice under an interleaved
/// advertisement/churn sequence, timed once with the incremental
/// weighted-APSP repair and once with the legacy from-scratch rebuild.
/// Cross-checks a sample of next hops for equality before timing.
fn bench_scale_routing(cols: usize, rows: usize, rounds: u64) -> ScaleCell {
    let n = cols * rows;
    let grid = |blocked: Option<(u32, u32)>| lattice_adj(cols, rows, blocked);
    let base = grid(None);
    let flapped = grid(Some((n as u32 / 2, n as u32 / 2 + 1)));
    // Every 8th round a link near the middle flaps (the churn shape);
    // every round re-advertises the drained weight vector. Weight vectors
    // are precomputed so the timed loop measures the *flood handling*,
    // not the advert synthesis.
    let weights: Vec<Vec<u16>> = (0..rounds).map(|r| drained_weights(n, r, rounds)).collect();
    let run_mode = |full_rebuild: bool| -> f64 {
        let mut ls = LinkState::new(&base, SimDuration::from_secs(5));
        ls.set_full_weighted_rebuild(full_rebuild);
        let start = Instant::now();
        for round in 0..rounds {
            let truth = if round % 8 == 4 { &flapped } else { &base };
            ls.set_node_weights(Some(weights[round as usize].clone()));
            ls.force_refresh_all(SimTime::from_secs_f64(round as f64 + 1.0), truth);
            std::hint::black_box(ls.next_hop(NodeId(0), NodeId(n as u32 - 1)));
        }
        start.elapsed().as_secs_f64()
    };
    // Correctness spot-check: both modes must route identically after an
    // advert + churn round.
    {
        let mut a = LinkState::new(&base, SimDuration::from_secs(5));
        let mut b = LinkState::new(&base, SimDuration::from_secs(5));
        b.set_full_weighted_rebuild(true);
        for (round, truth) in [(1u64, grid(None)), (2, grid(Some((4, 5))))] {
            for ls in [&mut a, &mut b] {
                ls.set_node_weights(Some(drained_weights(n, round * 7, rounds)));
                ls.force_refresh_all(SimTime::from_secs_f64(round as f64), &truth);
            }
            for s in (0..n as u32).step_by(7) {
                for d in (0..n as u32).step_by(5) {
                    assert_eq!(
                        a.next_hop(NodeId(s), NodeId(d)),
                        b.next_hop(NodeId(s), NodeId(d)),
                        "modes disagree for {s}->{d}"
                    );
                }
            }
        }
    }
    run_mode(false); // warm
    let best_of_2 = |full: bool, f: &dyn Fn(bool) -> f64| f(full).min(f(full));
    let scratch = best_of_2(true, &run_mode);
    let incremental = best_of_2(false, &run_mode);
    let out = ScaleCell {
        scenario: format!("routing: {cols}x{rows} grid advert+churn"),
        nodes: n,
        work: format!("{rounds} advert rounds, link flap every 8th"),
        scratch_wall_s: scratch,
        incremental_wall_s: incremental,
        speedup: scratch / incremental,
    };
    println!(
        "scale routing ({n:>3} nodes)       : scratch {scratch:>8.3}s | incremental {incremental:>8.3}s | speedup {:.2}x",
        out.speedup
    );
    out
}

/// Whole-run cell: the catalog's 100+-node lifetime scenario (batteries,
/// energy-aware routing, deaths flooding refreshes) run end to end in
/// both rebuild modes. Metrics are asserted identical before reporting.
fn bench_scale_run(name: &str) -> ScaleCell {
    let sc = Scenario::catalog()
        .into_iter()
        .find(|s| s.name == name)
        .expect("catalog scale entry");
    // Always the full horizon: the rebuild storm is the death cascade in
    // the run's second half — truncating it would measure idle slots.
    let mut cfg = sc.build(TransportKind::Jtp);
    let nodes = cfg.topology.node_count();
    cfg.incremental_rebuilds = true;
    let m_inc = run_experiment(&cfg); // warm
    let time_best_of_2 = |cfg: &ExperimentConfig| {
        (0..2)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(run_experiment(cfg));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let incremental = time_best_of_2(&cfg);
    cfg.incremental_rebuilds = false;
    let m_scratch = run_experiment(&cfg);
    let scratch = time_best_of_2(&cfg);
    assert_eq!(
        serde_json::to_string(&m_scratch).unwrap(),
        serde_json::to_string(&m_inc).unwrap(),
        "rebuild modes diverged"
    );
    let out = ScaleCell {
        scenario: format!("run: {name} (JTP)"),
        nodes,
        work: format!(
            "{:.0} simulated s, full lifetime",
            cfg.duration.as_secs_f64()
        ),
        scratch_wall_s: scratch,
        incremental_wall_s: incremental,
        speedup: scratch / incremental,
    };
    println!(
        "scale run {name:<22}: scratch {scratch:>8.3}s | incremental {incremental:>8.3}s | speedup {:.2}x",
        out.speedup
    );
    out
}

/// A deterministic sequence of waypoint-evolved position frames over a
/// `cols × rows` grid placement (1 s ticks, paper-style leg/pause
/// structure), precomputed so the timed loops measure geometry/repair
/// work only, never the mobility model itself.
fn waypoint_frames(
    cols: usize,
    rows: usize,
    ticks: u64,
) -> (Vec<Point>, Vec<Vec<Point>>, PathLoss) {
    let kind = TopologyKind::Grid {
        cols,
        rows,
        spacing_m: 80.0,
    };
    let pl = PathLoss::javelen_default();
    let field = field_for(&kind);
    let start = place_nodes(&kind, &pl, 7);
    // The catalog's mobility regime (`.mobile(1.0)`: 1 m/s, 47 m legs,
    // 100 s pauses, 1 s ticks) — ~1–3 links flip per tick, which is the
    // workload the diffed path is built for.
    let mut walkers: Vec<RandomWaypoint> = start
        .iter()
        .enumerate()
        .map(|(i, &p)| RandomWaypoint::new(field, p, 1.0, 47.0, 100.0, 77, i as u64))
        .collect();
    let frames: Vec<Vec<Point>> = (1..=ticks)
        .map(|t| {
            let now = SimTime::from_secs_f64(t as f64);
            walkers.iter_mut().map(|w| w.position_at(now)).collect()
        })
        .collect();
    (start, frames, pl)
}

/// Mobility geometry cell: per-tick neighbour discovery **as each
/// engine runs it** — the diffed engine's spatial-grid pass producing
/// the sorted in-range edge list (it never builds a graph per tick) vs
/// the scratch engine's brute-force all-pairs scan producing a full
/// `Adjacency` — over an identical waypoint trajectory. The comparison
/// deliberately includes each side's output-shape cost, because that is
/// the cost the respective engine pays; the pure candidate-set
/// equivalence (grid-backed `Adjacency` == brute `Adjacency`) is pinned
/// by assertion on sampled frames before timing and by the
/// `spatial_grid_matches_brute_force` proptest.
fn bench_mobility_geometry(cols: usize, rows: usize, ticks: u64) -> ScaleCell {
    let (_, frames, pl) = waypoint_frames(cols, rows, ticks);
    let n = cols * rows;
    for f in frames.iter().step_by((ticks as usize / 8).max(1)) {
        assert_eq!(
            adjacency_from_positions(f, &pl),
            adjacency_from_positions_brute(f, &pl),
            "grid and brute adjacency diverged"
        );
    }
    let time_brute = || {
        let start = Instant::now();
        for f in &frames {
            std::hint::black_box(adjacency_from_positions_brute(f, &pl).len());
        }
        start.elapsed().as_secs_f64()
    };
    // The grid side times the production per-tick shape: the sorted
    // in-range edge list (no graph construction).
    let time_grid = || {
        let start = Instant::now();
        for f in &frames {
            std::hint::black_box(edges_from_positions(f, &pl).len());
        }
        start.elapsed().as_secs_f64()
    };
    time_grid(); // warm
    let best_of_3 = |f: &dyn Fn() -> f64| f().min(f()).min(f());
    let brute = best_of_3(&time_brute);
    let grid = best_of_3(&time_grid);
    let out = ScaleCell {
        scenario: format!("geometry: {cols}x{rows} waypoint ticks"),
        nodes: n,
        work: format!(
            "{ticks} ticks, grid edge-list pass (diffed engine) vs \
             brute adjacency scan (scratch engine)"
        ),
        scratch_wall_s: brute,
        incremental_wall_s: grid,
        speedup: brute / grid,
    };
    println!(
        "mobility geometry ({n:>3} nodes)   : brute {brute:>8.3}s | grid {grid:>8.3}s | speedup {:.2}x",
        out.speedup
    );
    out
}

/// Mobility repair cell: the **whole diffed tick** under a per-tick
/// flooded refresh (the worst case for the repair machinery — the
/// production engine refreshes views at most every 5 s, where the
/// incremental side amortises even better) — neighbour discovery,
/// geometry-diff application to the masked truth, affected-region BFS
/// repair and the entry-incremental next-hop rebuild — vs the scratch
/// path (brute scan, whole-truth rebuild, full BFS rows, full table
/// builds). Next hops are cross-checked between modes before timing.
fn bench_mobility_repair(cols: usize, rows: usize, ticks: u64) -> ScaleCell {
    let (start_pts, frames, pl) = waypoint_frames(cols, rows, ticks);
    let n = cols * rows;
    let run_mode = |incremental: bool| -> f64 {
        let mut truth = MaskedTruth::new(adjacency_from_positions(&start_pts, &pl));
        let mut ls = LinkState::new(truth.adjacency(), SimDuration::from_secs(5));
        ls.set_full_table_rebuild(!incremental);
        let t0 = Instant::now();
        for (i, f) in frames.iter().enumerate() {
            if incremental {
                let edges = edges_from_positions(f, &pl);
                let diff = geometry_edge_diff(truth.geometry(), &edges);
                truth.apply_geometry_diff(&diff);
            } else {
                truth.set_geometry(adjacency_from_positions_brute(f, &pl));
            }
            ls.force_refresh_all(SimTime::from_secs_f64((i + 1) as f64), truth.adjacency());
            std::hint::black_box(ls.next_hop(NodeId(0), NodeId(n as u32 - 1)));
        }
        t0.elapsed().as_secs_f64()
    };
    // Correctness spot-check: both modes must route identically after
    // every tick of a short prefix.
    {
        let mut a_truth = MaskedTruth::new(adjacency_from_positions(&start_pts, &pl));
        let mut b_truth = a_truth.clone();
        let mut a = LinkState::new(a_truth.adjacency(), SimDuration::from_secs(5));
        let mut b = LinkState::new(b_truth.adjacency(), SimDuration::from_secs(5));
        b.set_full_table_rebuild(true);
        for (i, f) in frames.iter().take(12).enumerate() {
            let edges = edges_from_positions(f, &pl);
            let diff = geometry_edge_diff(a_truth.geometry(), &edges);
            a_truth.apply_geometry_diff(&diff);
            b_truth.set_geometry(adjacency_from_positions_brute(f, &pl));
            assert_eq!(a_truth.adjacency(), b_truth.adjacency());
            let now = SimTime::from_secs_f64((i + 1) as f64);
            a.force_refresh_all(now, a_truth.adjacency());
            b.force_refresh_all(now, b_truth.adjacency());
            for s in (0..n as u32).step_by(7) {
                for d in (0..n as u32).step_by(5) {
                    assert_eq!(
                        a.next_hop(NodeId(s), NodeId(d)),
                        b.next_hop(NodeId(s), NodeId(d)),
                        "modes disagree for {s}->{d} at tick {i}"
                    );
                }
            }
        }
    }
    run_mode(true); // warm
    let best_of_3 = |m: bool| run_mode(m).min(run_mode(m)).min(run_mode(m));
    let scratch = best_of_3(false);
    let incremental = best_of_3(true);
    let out = ScaleCell {
        scenario: format!("repair: {cols}x{rows} waypoint tick end-to-end"),
        nodes: n,
        work: format!("{ticks} ticks, diffed truth+BFS repair vs scratch"),
        scratch_wall_s: scratch,
        incremental_wall_s: incremental,
        speedup: scratch / incremental,
    };
    println!(
        "mobility repair ({n:>3} nodes)     : scratch {scratch:>8.3}s | incremental {incremental:>8.3}s | speedup {:.2}x",
        out.speedup
    );
    out
}

#[derive(Serialize)]
struct ParallelCell {
    scenario: String,
    nodes: usize,
    /// Requested flood-plane worker count (`ExperimentConfig::workers`).
    workers: usize,
    /// Hardware threads the host actually has — when smaller than
    /// `workers`, the measured wall clock serialises the fan-outs and
    /// `critical_path_speedup` is the honest capability number.
    host_threads: usize,
    wall_s: f64,
    /// Total busy seconds across all fan-out chunks (the work that exists).
    busy_s: f64,
    /// Total critical-path seconds (slowest chunk per fan-out — the work
    /// more cores cannot hide).
    critical_s: f64,
    /// Σ busy / Σ critical: the wall-clock speedup the partitioning makes
    /// attainable with at least `workers` cores.
    critical_path_speedup: f64,
    /// Measured wall clock of this cell vs its workers = 1 sibling on
    /// *this* host (≈ 1.0 or below on a single-core container).
    measured_speedup_vs_1: f64,
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Partitioned flood-plane cells on the n = 256 advert+churn workload
/// (the scale family's largest grid): the same flood sequence as
/// `bench_scale_routing`, run once per worker count. Next hops are
/// cross-checked against the sequential run before timing — `workers` is
/// a pure performance knob and must never change a route.
fn bench_parallel_routing(
    cols: usize,
    rows: usize,
    rounds: u64,
    workers_list: &[usize],
) -> Vec<ParallelCell> {
    let n = cols * rows;
    let base = lattice_adj(cols, rows, None);
    let flapped = lattice_adj(cols, rows, Some((n as u32 / 2, n as u32 / 2 + 1)));
    let weights: Vec<Vec<u16>> = (0..rounds).map(|r| drained_weights(n, r, rounds)).collect();
    let run_mode = |workers: usize| -> (f64, jtp_sim::par::ParStats) {
        let mut ls = LinkState::new(&base, SimDuration::from_secs(5));
        ls.set_workers(workers);
        let start = Instant::now();
        for round in 0..rounds {
            let truth = if round % 8 == 4 { &flapped } else { &base };
            ls.set_node_weights(Some(weights[round as usize].clone()));
            ls.force_refresh_all(SimTime::from_secs_f64(round as f64 + 1.0), truth);
            std::hint::black_box(ls.next_hop(NodeId(0), NodeId(n as u32 - 1)));
        }
        (start.elapsed().as_secs_f64(), ls.parallel_stats())
    };
    // Route-equality spot-check across the whole workers list before any
    // timing (the full byte-identity is pinned by engine_equivalence).
    {
        let mut seq = LinkState::new(&base, SimDuration::from_secs(5));
        let max_w = workers_list.iter().copied().max().unwrap_or(1);
        let mut par = LinkState::new(&base, SimDuration::from_secs(5));
        par.set_workers(max_w);
        for (round, truth) in [(1u64, &base), (2, &flapped)] {
            for ls in [&mut seq, &mut par] {
                ls.set_node_weights(Some(drained_weights(n, round * 7, rounds)));
                ls.force_refresh_all(SimTime::from_secs_f64(round as f64), truth);
            }
            for s in (0..n as u32).step_by(7) {
                for d in (0..n as u32).step_by(5) {
                    assert_eq!(
                        seq.next_hop(NodeId(s), NodeId(d)),
                        par.next_hop(NodeId(s), NodeId(d)),
                        "workers={max_w} disagrees with sequential for {s}->{d}"
                    );
                }
            }
        }
    }
    run_mode(1); // warm
    let best_of_2 = |w: usize| {
        let (t1, st) = run_mode(w);
        let (t2, _) = run_mode(w);
        (t1.min(t2), st)
    };
    let mut cells = Vec::new();
    let mut base_wall = None;
    for &w in workers_list {
        let (wall, stats) = best_of_2(w);
        let base_wall = *base_wall.get_or_insert(wall);
        let cell = ParallelCell {
            scenario: format!("routing: {cols}x{rows} grid advert+churn floods"),
            nodes: n,
            workers: w,
            host_threads: host_threads(),
            wall_s: wall,
            busy_s: stats.busy_ns as f64 / 1e9,
            critical_s: stats.critical_ns as f64 / 1e9,
            critical_path_speedup: stats.speedup_bound(),
            measured_speedup_vs_1: base_wall / wall,
        };
        println!(
            "parallel routing ({n:>3} nodes, w={w}): wall {wall:>8.3}s | measured {:.2}x | critical-path bound {:.2}x",
            cell.measured_speedup_vs_1, cell.critical_path_speedup
        );
        cells.push(cell);
    }
    cells
}

/// Whole-run partitioned cells on a scale catalog entry: the full
/// lifetime run per worker count, with the golden digest asserted equal
/// to the sequential one before any cell is reported.
fn bench_parallel_run(name: &str, workers_list: &[usize]) -> Vec<ParallelCell> {
    use jtp_netsim::try_run_digest_on;
    let sc = Scenario::catalog()
        .into_iter()
        .find(|s| s.name == name)
        .expect("catalog scale entry");
    let cfg = sc.build(TransportKind::Jtp);
    let nodes = cfg.topology.node_count();
    let d1 = try_run_digest_on(&cfg, 1).expect("catalog scenario runs");
    for &w in workers_list {
        let dw = try_run_digest_on(&cfg, w).expect("catalog scenario runs");
        assert_eq!(
            dw.to_line(name),
            d1.to_line(name),
            "workers={w} digest diverged from sequential"
        );
    }
    let time_best_of_2 = |w: usize| -> (f64, jtp_sim::par::ParStats) {
        let mut cfg = cfg.clone();
        cfg.workers = w;
        (0..2)
            .map(|_| {
                let (mut net, mut queue) =
                    jtp_netsim::Network::new(&cfg, jtp_netsim::TraceConfig::default());
                let horizon = net.horizon();
                let start = Instant::now();
                jtp_sim::run_until(&mut net, &mut queue, horizon);
                net.finalize(horizon);
                let wall = start.elapsed().as_secs_f64();
                std::hint::black_box(net.metrics(horizon));
                (wall, net.parallel_stats())
            })
            .fold(
                (f64::INFINITY, jtp_sim::par::ParStats::default()),
                |a, b| {
                    if b.0 < a.0 {
                        b
                    } else {
                        a
                    }
                },
            )
    };
    let mut cells = Vec::new();
    let mut base_wall = None;
    for &w in workers_list {
        let (wall, stats) = time_best_of_2(w);
        let base_wall = *base_wall.get_or_insert(wall);
        let cell = ParallelCell {
            scenario: format!("run: {name} (JTP)"),
            nodes,
            workers: w,
            host_threads: host_threads(),
            wall_s: wall,
            busy_s: stats.busy_ns as f64 / 1e9,
            critical_s: stats.critical_ns as f64 / 1e9,
            critical_path_speedup: stats.speedup_bound(),
            measured_speedup_vs_1: base_wall / wall,
        };
        println!(
            "parallel run {name:<19} (w={w}): wall {wall:>8.3}s | measured {:.2}x | critical-path bound {:.2}x",
            cell.measured_speedup_vs_1, cell.critical_path_speedup
        );
        cells.push(cell);
    }
    cells
}

/// Event-layer overhead on the sparse-load engine workload: the same
/// run under the disabled subscriber (every emission site compiled
/// out), the default reception trace (the pre-event-layer hot path),
/// pure event counters, and the full report stack with wall-clock
/// spans.
#[derive(Serialize)]
struct EventsCell {
    scenario: String,
    simulated_s: f64,
    /// `NoopSubscriber`: emission sites monomorphized away.
    noop_wall_s: f64,
    /// `TraceSubscriber` with the default (all-off) trace config — what
    /// every untraced run paid before the event layer existed.
    trace_default_wall_s: f64,
    /// `EventCounters`: every event built and folded into counters.
    counters_wall_s: f64,
    /// Reception trace + report recorder + time accountant (the
    /// `scenario_report` stack, dispatch spans included).
    full_stack_wall_s: f64,
    /// Noop vs the pre-event-layer hot path, in percent — the zero-cost
    /// claim (≤ 1 % is the acceptance bar; negative = noop is faster).
    noop_overhead_pct: f64,
}

fn bench_events(sim_s: f64) -> EventsCell {
    let cfg = fig9_scenario(500, sim_s);
    fn one_run<S: Subscriber, F: Fn() -> S>(cfg: &ExperimentConfig, mk: F) -> f64 {
        let start = Instant::now();
        std::hint::black_box(try_run_subscribed(cfg, mk()).expect("scenario runs"));
        start.elapsed().as_secs_f64()
    }
    // A single run is well under a second, where host noise — frequency
    // scaling, noisy neighbours — swamps the effect being measured. Warm
    // once per stack (allocator, caches), then interleave the four
    // subscriber stacks at single-run granularity and keep each stack's
    // minimum, so drift hits all stacks alike instead of biasing whichever
    // happened to run last.
    const ROUNDS: usize = 12;
    let (mut noop, mut trace_default, mut counters, mut full) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for round in 0..=ROUNDS {
        let n = one_run(&cfg, || NoopSubscriber);
        let t = one_run(&cfg, || TraceSubscriber::new(TraceConfig::default()));
        let c = one_run(&cfg, EventCounters::default);
        let f = one_run(&cfg, || {
            (
                TraceSubscriber::new(TraceConfig {
                    receptions: true,
                    ..Default::default()
                }),
                (ReportRecorder::new(), TimeAccountant::default()),
            )
        });
        if round > 0 {
            // Round 0 is the warm-up pass.
            noop = noop.min(n);
            trace_default = trace_default.min(t);
            counters = counters.min(c);
            full = full.min(f);
        }
    }
    let cell = EventsCell {
        scenario: "fig9: random25 sparse load (JTP)".into(),
        simulated_s: sim_s,
        noop_wall_s: noop,
        trace_default_wall_s: trace_default,
        counters_wall_s: counters,
        full_stack_wall_s: full,
        noop_overhead_pct: (noop / trace_default - 1.0) * 100.0,
    };
    println!(
        "events fig9 ({sim_s:.0}s sim)        : noop {noop:>8.3}s | trace-off {trace_default:>8.3}s | counters {counters:>8.3}s | full stack {full:>8.3}s | noop overhead {:+.2}%",
        cell.noop_overhead_pct
    );
    cell
}

#[derive(Serialize)]
struct Batch {
    scenario: String,
    seeds: usize,
    threads: usize,
    legacy_serial_wall_s: f64,
    overhauled_parallel_wall_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    queue_workload: String,
    queue_ops: Vec<QueueOps>,
    slot_engine: Vec<SlotEngine>,
    batch: Option<Batch>,
    next_hop: Vec<NextHopBench>,
    /// 100+-node dynamics/energy-re-advertisement path: incremental
    /// rebuilds vs the legacy from-scratch rebuilds (byte-identical
    /// results, see `engine_equivalence`).
    scale: Vec<ScaleCell>,
    /// Mobile-topology per-tick path at n ∈ {64, 100, 256}: spatial-grid
    /// vs brute-force neighbour discovery, and the diffed
    /// truth+BFS-repair tick vs the scratch rebuilds (byte-identical
    /// results, see the `mobile` tests).
    mobility: Vec<ScaleCell>,
    /// Partitioned flood-plane engine at `workers` ∈ {1, 2, 4}: the
    /// n = 256 flood workload and the 121-node lifetime run, with
    /// measured wall clock and the critical-path speedup bound per cell
    /// (byte-identical results, see `engine_equivalence` and the fuzz
    /// oracle).
    parallel: Vec<ParallelCell>,
    /// Event/telemetry layer overhead on the sparse-load workload:
    /// disabled subscriber vs the pre-event-layer hot path vs counting
    /// and full-report stacks (byte-identical results, see
    /// `subscriber_equivalence` and the fuzz oracle).
    events: Vec<EventsCell>,
}

/// Configure a scenario as the pre-overhaul engine (slot-per-event loop,
/// uncoalesced wakeup chains) or the overhauled one.
fn engine_mode(cfg: &mut ExperimentConfig, overhauled: bool) {
    cfg.idle_slot_skipping = overhauled;
    cfg.wakeup_coalescing = overhauled;
}

/// Fig. 9-style scenario: 25-node random field, sparse long-lived load —
/// the workload class behind the paper's random-topology figures.
fn fig9_scenario(seed: u64, duration_s: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::random(25)
        .transport(TransportKind::Jtp)
        .duration_s(duration_s)
        .seed(seed);
    for (i, (s, d)) in [(0u32, 14u32), (8, 20)].iter().enumerate() {
        cfg = cfg.flow(FlowSpec {
            src: NodeId(*s),
            dst: NodeId(*d),
            start: SimDuration::from_secs(10 + i as u64 * 5),
            packets: u32::MAX / 2,
            loss_tolerance: 1.0,
            initial_rate_pps: None,
        });
    }
    cfg
}

fn bench_slot_engine(
    name: &str,
    mut mk: impl FnMut(u64, f64) -> ExperimentConfig,
    sim_s: f64,
) -> SlotEngine {
    let mut legacy = mk(500, sim_s);
    engine_mode(&mut legacy, false);
    let mut fast = mk(500, sim_s);
    engine_mode(&mut fast, true);
    // Warm (allocator, caches), then measure.
    time_runs(std::slice::from_ref(&fast));
    let legacy_wall = time_runs(std::slice::from_ref(&legacy));
    let fast_wall = time_runs(std::slice::from_ref(&fast));
    let out = SlotEngine {
        scenario: name.to_string(),
        simulated_s: sim_s,
        legacy_wall_s: legacy_wall,
        overhauled_wall_s: fast_wall,
        legacy_sim_s_per_wall_s: sim_s / legacy_wall,
        overhauled_sim_s_per_wall_s: sim_s / fast_wall,
        speedup: legacy_wall / fast_wall,
    };
    println!(
        "engine {name:<28}: legacy {legacy_wall:>8.3}s | overhauled {fast_wall:>8.3}s | speedup {:.2}x",
        out.speedup
    );
    out
}

// ----------------------------------------------------------------------
// xl: the 1000+-node family — exact vs hierarchical routing backend
// ----------------------------------------------------------------------

#[derive(Serialize)]
struct XlStateCell {
    scenario: String,
    nodes: usize,
    clusters: u64,
    /// Flat per-view tables: n² distance entries (the O(n²) wall).
    exact_table_entries: u64,
    /// Σ|C|² intra-cluster entries + k·n summary rows.
    hierarchical_table_entries: u64,
    /// exact / hierarchical — the state-compression factor.
    compression: f64,
}

#[derive(Serialize)]
struct XlRepairCell {
    scenario: String,
    nodes: usize,
    /// Node-churn rounds applied (fail + recover alternating).
    churn_rounds: u64,
    exact_wall_s: f64,
    hierarchical_wall_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct XlRunCell {
    scenario: String,
    nodes: usize,
    simulated_s: f64,
    exact_wall_s: f64,
    hierarchical_wall_s: f64,
    speedup: f64,
    exact_delivered: u64,
    hierarchical_delivered: u64,
}

#[derive(Serialize)]
struct XlSection {
    /// Routing-state footprint, exact vs hierarchical, per xl entry.
    state: Vec<XlStateCell>,
    /// Churn flood-repair cost on the xl placements: identical
    /// fail/recover sequences through both backends.
    repair: Vec<XlRepairCell>,
    /// Whole-run wall clock of an xl catalog entry under each backend.
    whole_run: Vec<XlRunCell>,
}

/// Routing-state footprint of both backends on an xl placement. Exact
/// is n² by construction; the hierarchical figure is computed from the
/// backend's *actual* clusters (Σ|C|² intra tables + k rows of n
/// toward/dc entries).
fn bench_xl_state(sc: &Scenario) -> XlStateCell {
    let cfg = sc.build(TransportKind::Jtp);
    let pts = place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed);
    let adj = adjacency_from_positions(&pts, &cfg.pathloss);
    let n = adj.len();
    let select = BackendSelect::Hierarchical(cluster_spec_for(&cfg.topology));
    let hier = LinkState::with_backend(&adj, cfg.routing_refresh, &select);
    let back = hier.hierarchical().expect("hierarchical selected");
    let stats = back.hierarchy_stats();
    let mut sizes = vec![0u64; stats.clusters as usize];
    for v in 0..n {
        sizes[back.cluster_id(NodeId(v as u32)) as usize] += 1;
    }
    let intra: u64 = sizes.iter().map(|s| s * s).sum();
    let summary = stats.clusters * n as u64;
    let out = XlStateCell {
        scenario: sc.name.clone(),
        nodes: n,
        clusters: stats.clusters,
        exact_table_entries: (n * n) as u64,
        hierarchical_table_entries: intra + summary,
        compression: (n * n) as f64 / (intra + summary) as f64,
    };
    println!(
        "xl state {:<22}: exact {:>10} entries | hierarchical {:>9} entries | compression {:.1}x",
        out.scenario, out.exact_table_entries, out.hierarchical_table_entries, out.compression
    );
    out
}

/// Churn flood-repair cost on an xl placement: alternate a mid-field
/// node failing and recovering, flooding a full refresh each round,
/// through both backends on the identical adjacency sequence. This is
/// the repair path every NodeChurn dynamics event exercises; at 1000+
/// nodes the hierarchical backend must win (cluster-scoped repair vs
/// O(n)-row floods) — asserted, not just reported.
fn bench_xl_repair(sc: &Scenario, rounds: u64) -> XlRepairCell {
    let cfg = sc.build(TransportKind::Jtp);
    let pts = place_nodes(&cfg.topology, &cfg.pathloss, cfg.seed);
    let base = adjacency_from_positions(&pts, &cfg.pathloss);
    let n = base.len();
    // The churned variant: a node near the field centre loses every
    // link (exactly what a NodeChurn failure does to the truth).
    let victim = NodeId(n as u32 / 2);
    let mut failed = base.clone();
    for nbr in base.neighbors(victim).to_vec() {
        failed.set_edge(victim, nbr, false);
    }
    let select = BackendSelect::Hierarchical(cluster_spec_for(&cfg.topology));
    let run_mode = |hier: bool| -> f64 {
        let mut ls = if hier {
            LinkState::with_backend(&base, cfg.routing_refresh, &select)
        } else {
            LinkState::new(&base, cfg.routing_refresh)
        };
        let start = Instant::now();
        for round in 0..rounds {
            let truth = if round % 2 == 0 { &failed } else { &base };
            ls.force_refresh_all(SimTime::from_secs_f64(round as f64 + 1.0), truth);
            std::hint::black_box(ls.next_hop(NodeId(0), NodeId(n as u32 - 1)));
        }
        start.elapsed().as_secs_f64()
    };
    run_mode(true); // warm
    let best_of_2 = |hier: bool| run_mode(hier).min(run_mode(hier));
    let exact = best_of_2(false);
    let hier_wall = best_of_2(true);
    let out = XlRepairCell {
        scenario: sc.name.clone(),
        nodes: n,
        churn_rounds: rounds,
        exact_wall_s: exact,
        hierarchical_wall_s: hier_wall,
        speedup: exact / hier_wall,
    };
    println!(
        "xl repair {:<21}: exact {exact:>8.3}s | hierarchical {hier_wall:>8.3}s | speedup {:.2}x",
        out.scenario, out.speedup
    );
    assert!(
        out.speedup > 1.0,
        "hierarchical repair must win at n = {n} (exact {exact:.3}s vs {hier_wall:.3}s)"
    );
    out
}

/// Whole-run wall clock of an xl catalog entry under each backend: the
/// same scenario lowered once with `routing_backend = Exact` and once
/// `Hierarchical`. Delivered counts are reported for both (routes
/// differ across backends, so metrics legitimately differ); at 1000+
/// nodes the hierarchical run must be faster — asserted.
fn bench_xl_run(sc: &Scenario, best_of: usize) -> XlRunCell {
    let nodes = sc.topology.node_count();
    let time_backend = |kind: RoutingBackendKind| -> (f64, u64) {
        let cfg = sc.clone().routing_backend(kind).build(TransportKind::Jtp);
        let m = run_experiment(&cfg); // warm + metrics
        let wall = (0..best_of)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(run_experiment(&cfg));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        (wall, m.delivered_packets)
    };
    let (hier_wall, hier_delivered) = time_backend(RoutingBackendKind::Hierarchical);
    let (exact_wall, exact_delivered) = time_backend(RoutingBackendKind::Exact);
    let out = XlRunCell {
        scenario: sc.name.clone(),
        nodes,
        simulated_s: sc.duration_s,
        exact_wall_s: exact_wall,
        hierarchical_wall_s: hier_wall,
        speedup: exact_wall / hier_wall,
        exact_delivered,
        hierarchical_delivered: hier_delivered,
    };
    println!(
        "xl run {:<24}: exact {exact_wall:>8.3}s | hierarchical {hier_wall:>8.3}s | speedup {:.2}x",
        out.scenario, out.speedup
    );
    assert!(
        out.speedup > 1.0,
        "hierarchical whole-run must win at n = {nodes} (exact {exact_wall:.3}s vs {hier_wall:.3}s)"
    );
    out
}

fn main() {
    // An unknown `--section` is a hard error at parse time — a CI job
    // gating on a renamed section must fail, not upload an artifact
    // without it.
    let args = Args::parse_with_sections(&[
        "queue_ops",
        "slot_engine",
        "batch",
        "next_hop",
        "scale",
        "mobility",
        "parallel",
        "events",
        "xl",
    ]);

    // 1. Pure queue-op throughput at simulation-realistic and stress
    //    pending-set sizes.
    let mut queue_ops = Vec::new();
    if args.section_enabled("queue_ops") {
        let steps: u64 = args.pick(4_000_000, 800_000);
        for fill in [48usize, 4096] {
            bench_baseline_queue(fill, steps / 10); // warm
            bench_indexed_queue(fill, steps / 10);
            let base_eps = bench_baseline_queue(fill, steps);
            let idx_eps = bench_indexed_queue(fill, steps);
            let row = QueueOps {
                pending: fill,
                baseline_events_per_sec: base_eps,
                indexed_events_per_sec: idx_eps,
                speedup: idx_eps / base_eps,
            };
            println!(
                "queue ops (fill {fill:>4})          : baseline {base_eps:>12.0} ev/s | indexed {idx_eps:>12.0} ev/s | speedup {:.2}x",
                row.speedup
            );
            queue_ops.push(row);
        }
    }

    // 2. Whole-engine throughput: pre-overhaul engine (slot-per-event,
    //    uncoalesced wakeups) vs the overhauled engine. Results of the two
    //    engines are deterministic per mode; idle-slot skipping itself is
    //    byte-identical (see tests/engine_equivalence.rs).
    let mut slot_engine = Vec::new();
    if args.section_enabled("slot_engine") {
        let sim_s = args.pick(5000.0, 1500.0);
        slot_engine = vec![
            bench_slot_engine("fig9: random25 sparse load", fig9_scenario, sim_s),
            bench_slot_engine(
                "fig5: linear8 saturated",
                |seed, d| fig5_scenario(seed, d, true),
                args.pick(2500.0, 800.0),
            ),
        ];
    }

    // 3. Multi-seed batch at fig5 scale: legacy engine run serially (the
    //    pre-overhaul harness) vs the overhauled engine through the
    //    work-stealing parallel runner.
    let mut batch = None;
    if args.section_enabled("batch") {
        let seeds: usize = args.pick(12, 4);
        let batch_sim_s = args.pick(2500.0, 800.0);
        let legacy: Vec<ExperimentConfig> = (0..seeds)
            .map(|i| {
                let mut c = fig5_scenario(500 + i as u64, batch_sim_s, false);
                engine_mode(&mut c, false);
                c
            })
            .collect();
        let legacy_wall = time_runs(&legacy);
        let mut batch_cfg = fig5_scenario(500, batch_sim_s, true);
        engine_mode(&mut batch_cfg, true);
        let start = Instant::now();
        let ms = jtp_netsim::run_many(&batch_cfg, seeds);
        let parallel_wall = start.elapsed().as_secs_f64();
        assert_eq!(ms.len(), seeds);
        let b = Batch {
            scenario: "fig5 multi-seed batch (2 competing flows, linear8)".into(),
            seeds,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            legacy_serial_wall_s: legacy_wall,
            overhauled_parallel_wall_s: parallel_wall,
            speedup: legacy_wall / parallel_wall,
        };
        println!(
            "batch ({seeds} seeds)              : legacy serial {legacy_wall:>8.3}s | overhauled {parallel_wall:>8.3}s | speedup {:.2}x",
            b.speedup
        );
        batch = Some(b);
    }

    // 4. Per-packet next-hop decision: neighbour scan vs flat hop table,
    //    at the random-field scale (25) and a larger mesh (100).
    let mut next_hop = Vec::new();
    if args.section_enabled("next_hop") {
        let nh_queries: u64 = args.pick(20_000_000, 2_000_000);
        next_hop = vec![
            bench_next_hop(25, 30, nh_queries),
            bench_next_hop(100, 150, nh_queries),
        ];
    }

    // 5. Scale: the dynamics/energy-re-advertisement path past 16 nodes —
    //    incremental masked-truth + weighted-APSP repair vs the legacy
    //    from-scratch rebuilds, at the routing component level (100- and
    //    144-node grids) and over the catalog's 121-node lifetime run.
    let mut scale = Vec::new();
    if args.section_enabled("scale") {
        let adverts: u64 = args.pick(120, 40);
        scale = vec![
            bench_scale_routing(10, 10, adverts),
            bench_scale_routing(12, 12, adverts),
            bench_scale_routing(16, 16, adverts),
            bench_scale_run("grid121-lifetime"),
        ];
    }

    // 6. Mobility: the per-tick geometry + repair cost of moving
    //    topologies — spatial-grid vs brute-force neighbour discovery,
    //    and the whole diffed tick vs the scratch rebuilds, at the
    //    mobile scale family's sizes.
    let mut mobility = Vec::new();
    if args.section_enabled("mobility") {
        // The catalog's own 600 s horizon: random-waypoint mobility needs
        // a few mean-pause lengths to reach its steady state (~1/3 of
        // nodes mid-leg); shorter windows under-represent the churn the
        // real mobile entries sustain.
        let ticks: u64 = args.pick(600, 150);
        for (cols, rows) in [(8usize, 8usize), (10, 10), (16, 16)] {
            mobility.push(bench_mobility_geometry(cols, rows, ticks));
            mobility.push(bench_mobility_repair(cols, rows, ticks));
        }
    }

    // 7. Parallel: the partitioned flood-plane engine — the n = 256
    //    advert+churn flood workload and the catalog's 121-node lifetime
    //    run at workers ∈ {1, 2, 4}. Byte-identity across worker counts is
    //    asserted in-bench (digests + next-hop samples) on top of the
    //    engine_equivalence pins.
    let mut parallel = Vec::new();
    if args.section_enabled("parallel") {
        let adverts: u64 = args.pick(120, 40);
        parallel.extend(bench_parallel_routing(16, 16, adverts, &[1, 2, 4]));
        parallel.extend(bench_parallel_run("grid121-lifetime", &[1, 4]));
    }

    // 8. The event/telemetry layer: the zero-cost-when-disabled claim,
    //    measured — NoopSubscriber must be within noise of the
    //    pre-event-layer hot path (a default-config TraceSubscriber),
    //    with the counting and full-report stacks priced alongside.
    let mut events = Vec::new();
    if args.section_enabled("events") {
        events.push(bench_events(args.pick(25_000.0, 1500.0)));
    }

    // 9. xl: the 1000+-node family — routing-state footprint, churn
    //    flood-repair cost and whole-run wall clock, exact vs
    //    hierarchical backend. Hierarchical must win at this scale; the
    //    cells assert it. Written as its own top-level JSON section (like
    //    `lifetime` and `transports`) so `--section xl` can refresh it
    //    without touching the core report.
    let mut xl = None;
    if args.section_enabled("xl") {
        let cat = Scenario::xl_catalog();
        let churn_entry = cat
            .iter()
            .find(|s| s.name == "xl-grid-churn")
            .expect("xl catalog entry");
        xl = Some(XlSection {
            state: cat.iter().map(bench_xl_state).collect(),
            repair: vec![bench_xl_repair(churn_entry, args.pick(24, 8))],
            whole_run: vec![bench_xl_run(churn_entry, args.pick(2, 1))],
        });
    }

    let report = Report {
        quick: args.quick,
        queue_workload: "hold model: pop + schedule(now+U[0,100ms]) per step, extra schedule+cancel every 3rd step".into(),
        queue_ops,
        slot_engine,
        batch,
        next_hop,
        scale,
        mobility,
        parallel,
        events,
    };
    // `--section xl` alone must not clobber the core report (or the
    // `lifetime`/`transports` sections other binaries merge in).
    let core_ran = args.sections.is_empty() || args.sections.iter().any(|s| s != "xl");
    if core_ran {
        jtp_bench::maybe_write_json(&args, &report);
    }
    if let (Some(xl), Some(path)) = (&xl, &args.json) {
        let body = serde_json::to_string_pretty(xl).expect("serialisable xl section");
        jtp_bench::merge_json_section(path, "xl", &body);
    }
}
