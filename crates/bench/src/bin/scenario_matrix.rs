//! Scenario matrix: sweep the canonical scenario catalog across
//! transports (JTP / TCP / ATP), batch-averaged over independent seeds.
//!
//! This is the scenario engine's headline artifact: one row per
//! (scenario, transport) cell with delivery ratio, mean goodput,
//! energy-per-bit and the recovery/drop counters that explain them —
//! the paper's two-metric comparison extended to workloads and substrate
//! dynamics the paper never ran (churn, partitions, link flapping, grids
//! and clustered fields).
//!
//! Run: `cargo run --release -p jtp-bench --bin scenario_matrix -- --quick
//! --json BENCH_scenarios.json`

use jtp_bench::Args;
use jtp_netsim::{run_many, summarize_runs, Scenario, TransportKind};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    scenario: String,
    transport: String,
    seeds: usize,
    flows: usize,
    delivery_ratio_mean: f64,
    goodput_kbps_mean: f64,
    goodput_kbps_ci95: f64,
    energy_per_bit_uj_mean: f64,
    energy_per_bit_uj_ci95: f64,
    source_retransmissions: f64,
    local_recoveries: f64,
    churn_drops: f64,
    no_route_drops: f64,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    cells: Vec<Cell>,
}

fn mean_u64(xs: impl Iterator<Item = u64>, n: usize) -> f64 {
    xs.sum::<u64>() as f64 / n.max(1) as f64
}

fn main() {
    let args = Args::parse();
    let seeds = args.pick(8, 2);
    let transports = [
        (TransportKind::Jtp, "JTP"),
        (TransportKind::Tcp, "TCP"),
        (TransportKind::Atp, "ATP"),
    ];
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for sc in Scenario::catalog() {
        for (t, tname) in transports {
            let cfg = sc.build(t);
            let ms = run_many(&cfg, seeds);
            let (epb, gp) = summarize_runs(&ms);
            let dr = ms.iter().map(|m| m.delivery_ratio()).sum::<f64>() / ms.len() as f64;
            let cell = Cell {
                scenario: sc.name.clone(),
                transport: tname.into(),
                seeds,
                flows: cfg.flows.len(),
                delivery_ratio_mean: dr,
                goodput_kbps_mean: gp.mean,
                goodput_kbps_ci95: gp.ci95,
                energy_per_bit_uj_mean: epb.mean,
                energy_per_bit_uj_ci95: epb.ci95,
                source_retransmissions: mean_u64(
                    ms.iter().map(|m| m.source_retransmissions),
                    ms.len(),
                ),
                local_recoveries: mean_u64(ms.iter().map(|m| m.local_recoveries), ms.len()),
                churn_drops: mean_u64(ms.iter().map(|m| m.churn_drops), ms.len()),
                no_route_drops: mean_u64(ms.iter().map(|m| m.no_route_drops), ms.len()),
            };
            rows.push(vec![
                cell.scenario.clone(),
                cell.transport.clone(),
                format!("{}", cell.flows),
                format!("{:.3}", cell.delivery_ratio_mean),
                format!("{:.2}", cell.goodput_kbps_mean),
                format!("{:.3}", cell.energy_per_bit_uj_mean),
                format!("{:.1}", cell.source_retransmissions),
                format!("{:.1}", cell.local_recoveries),
                format!("{:.1}", cell.churn_drops + cell.no_route_drops),
            ]);
            cells.push(cell);
        }
    }
    jtp_bench::print_table(
        &format!("Scenario matrix ({seeds} seeds per cell)"),
        &[
            "scenario",
            "transport",
            "flows",
            "delivery",
            "goodput kbps",
            "µJ/bit",
            "src rtx",
            "cache rec",
            "churn+noroute",
        ],
        &rows,
    );
    let report = Report {
        quick: args.quick,
        cells,
    };
    jtp_bench::maybe_write_json(&args, &report);
}
