//! Scenario matrix: sweep the canonical scenario catalog across all five
//! transports (JTP / TCP / ATP / CUBIC / BBR), batch-averaged over
//! independent seeds.
//!
//! Two sections:
//!
//! * `catalog` — the scenario engine's headline artifact: one row per
//!   (scenario, transport) cell with delivery ratio, mean goodput,
//!   energy-per-bit and the recovery/drop counters that explain them —
//!   the paper's two-metric comparison extended to workloads and
//!   substrate dynamics the paper never ran.
//! * `transports` — the heavy-traffic opponents matrix: the `heavy-*`
//!   adversarial scenarios × all five transports, scored on fairness
//!   (Jain's index over per-flow goodput), latency (mean flow completion
//!   time) and lifetime (first battery death, death count, energy per
//!   bit). Merged into the `--json` target as a `"transports"` section,
//!   preserving whatever else the file holds (e.g. `BENCH_engine.json`).
//!
//! Run: `cargo run --release -p jtp-bench --bin scenario_matrix -- --quick
//! --json BENCH_scenarios.json`, or
//! `cargo run --release -p jtp-bench --bin scenario_matrix -- --section
//! transports --json BENCH_engine.json`

use jtp_bench::Args;
use jtp_netsim::{run_many, summarize_runs, Metrics, Scenario, TransportKind};
use serde::Serialize;

const TRANSPORTS: [(TransportKind, &str); 5] = [
    (TransportKind::Jtp, "JTP"),
    (TransportKind::Tcp, "TCP"),
    (TransportKind::Atp, "ATP"),
    (TransportKind::Cubic, "CUBIC"),
    (TransportKind::Bbr, "BBR"),
];

#[derive(Serialize)]
struct Cell {
    scenario: String,
    transport: String,
    seeds: usize,
    flows: usize,
    delivery_ratio_mean: f64,
    goodput_kbps_mean: f64,
    goodput_kbps_ci95: f64,
    energy_per_bit_uj_mean: f64,
    energy_per_bit_uj_ci95: f64,
    source_retransmissions: f64,
    local_recoveries: f64,
    churn_drops: f64,
    no_route_drops: f64,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    cells: Vec<Cell>,
}

/// One (heavy scenario, transport) cell of the opponents matrix.
#[derive(Serialize)]
struct TransportCell {
    scenario: String,
    transport: String,
    seeds: usize,
    flows: usize,
    delivery_ratio_mean: f64,
    goodput_kbps_mean: f64,
    /// Jain's fairness index over per-flow goodput, averaged across runs.
    jain_fairness_mean: f64,
    /// Mean time from flow start to completion (or run end), seconds.
    flow_completion_s_mean: f64,
    /// Fraction of flows that completed within the run.
    completed_frac: f64,
    /// Mean time of the first battery death (run horizon when none died).
    first_death_s_mean: f64,
    battery_deaths_mean: f64,
    energy_per_bit_uj_mean: f64,
}

#[derive(Serialize)]
struct TransportReport {
    quick: bool,
    cells: Vec<TransportCell>,
}

fn mean_u64(xs: impl Iterator<Item = u64>, n: usize) -> f64 {
    xs.sum::<u64>() as f64 / n.max(1) as f64
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`; 1.0 for an empty or all-zero
/// allocation (nothing to be unfair about).
fn jain(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        1.0
    } else {
        sum * sum / (n * sq)
    }
}

fn catalog_section(args: &Args, seeds: usize) {
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for sc in Scenario::catalog() {
        for (t, tname) in TRANSPORTS {
            let cfg = sc.build(t);
            let ms = run_many(&cfg, seeds);
            let (epb, gp) = summarize_runs(&ms);
            let dr = ms.iter().map(|m| m.delivery_ratio()).sum::<f64>() / ms.len() as f64;
            let cell = Cell {
                scenario: sc.name.clone(),
                transport: tname.into(),
                seeds,
                flows: cfg.flows.len(),
                delivery_ratio_mean: dr,
                goodput_kbps_mean: gp.mean,
                goodput_kbps_ci95: gp.ci95,
                energy_per_bit_uj_mean: epb.mean,
                energy_per_bit_uj_ci95: epb.ci95,
                source_retransmissions: mean_u64(
                    ms.iter().map(|m| m.source_retransmissions),
                    ms.len(),
                ),
                local_recoveries: mean_u64(ms.iter().map(|m| m.local_recoveries), ms.len()),
                churn_drops: mean_u64(ms.iter().map(|m| m.churn_drops), ms.len()),
                no_route_drops: mean_u64(ms.iter().map(|m| m.no_route_drops), ms.len()),
            };
            rows.push(vec![
                cell.scenario.clone(),
                cell.transport.clone(),
                format!("{}", cell.flows),
                format!("{:.3}", cell.delivery_ratio_mean),
                format!("{:.2}", cell.goodput_kbps_mean),
                format!("{:.3}", cell.energy_per_bit_uj_mean),
                format!("{:.1}", cell.source_retransmissions),
                format!("{:.1}", cell.local_recoveries),
                format!("{:.1}", cell.churn_drops + cell.no_route_drops),
            ]);
            cells.push(cell);
        }
    }
    jtp_bench::print_table(
        &format!("Scenario matrix ({seeds} seeds per cell)"),
        &[
            "scenario",
            "transport",
            "flows",
            "delivery",
            "goodput kbps",
            "µJ/bit",
            "src rtx",
            "cache rec",
            "churn+noroute",
        ],
        &rows,
    );
    let report = Report {
        quick: args.quick,
        cells,
    };
    jtp_bench::maybe_write_json(args, &report);
}

fn transports_section(args: &Args, seeds: usize) {
    let heavy = Scenario::heavy_catalog();
    assert!(!heavy.is_empty(), "the catalog lost its heavy-* entries");
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for sc in &heavy {
        let horizon = sc.duration_s;
        for (t, tname) in TRANSPORTS {
            let cfg = sc.build(t);
            let ms = run_many(&cfg, seeds);
            let k = ms.len() as f64;
            let per_run = |f: &dyn Fn(&Metrics) -> f64| ms.iter().map(f).sum::<f64>() / k;
            let dr = per_run(&|m| m.delivery_ratio());
            let (epb, gp) = summarize_runs(&ms);
            let fairness = per_run(&|m| {
                let g: Vec<f64> = m.flows.iter().map(|f| f.goodput_kbps()).collect();
                jain(&g)
            });
            let n_flows: usize = ms.iter().map(|m| m.flows.len()).sum();
            let completion = ms
                .iter()
                .flat_map(|m| m.flows.iter().map(|f| f.active_time_s))
                .sum::<f64>()
                / n_flows.max(1) as f64;
            let completed = ms
                .iter()
                .flat_map(|m| m.flows.iter().map(|f| f.completed as u32 as f64))
                .sum::<f64>()
                / n_flows.max(1) as f64;
            let first_death = per_run(&|m| m.first_death_s.unwrap_or(horizon));
            let deaths = per_run(&|m| m.battery_deaths as f64);
            let cell = TransportCell {
                scenario: sc.name.clone(),
                transport: tname.into(),
                seeds,
                flows: cfg.flows.len(),
                delivery_ratio_mean: dr,
                goodput_kbps_mean: gp.mean,
                jain_fairness_mean: fairness,
                flow_completion_s_mean: completion,
                completed_frac: completed,
                first_death_s_mean: first_death,
                battery_deaths_mean: deaths,
                energy_per_bit_uj_mean: epb.mean,
            };
            rows.push(vec![
                cell.scenario.clone(),
                cell.transport.clone(),
                format!("{}", cell.flows),
                format!("{:.3}", cell.delivery_ratio_mean),
                format!("{:.2}", cell.goodput_kbps_mean),
                format!("{:.3}", cell.jain_fairness_mean),
                format!("{:.1}", cell.flow_completion_s_mean),
                format!("{:.2}", cell.completed_frac),
                format!("{:.1}", cell.first_death_s_mean),
                format!("{:.1}", cell.battery_deaths_mean),
                format!("{:.3}", cell.energy_per_bit_uj_mean),
            ]);
            cells.push(cell);
        }
    }
    jtp_bench::print_table(
        &format!("Heavy-traffic opponents matrix ({seeds} seeds per cell)"),
        &[
            "scenario",
            "transport",
            "flows",
            "delivery",
            "goodput kbps",
            "jain",
            "fct s",
            "done%",
            "first death s",
            "deaths",
            "µJ/bit",
        ],
        &rows,
    );
    let report = TransportReport {
        quick: args.quick,
        cells,
    };
    if let Some(path) = &args.json {
        let body = serde_json::to_string_pretty(&report).expect("serialisable report");
        jtp_bench::merge_json_section(path, "transports", &body);
    }
}

fn main() {
    let args = Args::parse_with_sections(&["catalog", "transports"]);
    if args.section_enabled("catalog") {
        catalog_section(&args, args.pick(8, 2));
    }
    if args.section_enabled("transports") {
        transports_section(&args, args.pick(6, 2));
    }
}
