//! Table 2 — The JAVeLEN testbed surrogate.
//!
//! The paper's Linux/RTLinux testbed: 14 nodes indoors, 30-minute runs,
//! flows generated at each node with mean interarrival 400 s and mean
//! transfer size 100 KB. Indoor links "are more stable and their quality
//! is much better" than the simulated channel, "which results in lower
//! energy consumption for all protocols" — we reproduce that with the
//! stable channel configuration.
//!
//! Expected shape: JTP < ATP < TCP on energy per bit; JTP > ATP > TCP on
//! goodput; TCP's goodput is better than in the lossy simulations because
//! the loss rate is low.

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, summarize_runs, ExperimentConfig, FlowSpec, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use jtp_sim::{NodeId, SimDuration, SimRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    protocol: String,
    energy_uj_per_bit: f64,
    goodput_kbps: f64,
    source_rtx: f64,
    queue_drops: f64,
}

/// Poisson-ish flow arrivals: each node sources transfers with
/// exponential interarrival (mean 400 s) and 100 KB size (125 packets of
/// 800 B), to random other nodes.
fn testbed_workload(n: usize, duration_s: f64, seed: u64) -> Vec<FlowSpec> {
    let mut rng = SimRng::derive(seed, "table2-workload");
    let mut flows = Vec::new();
    for src in 0..n {
        let mut t = rng.exponential(400.0);
        while t + 60.0 < duration_s {
            let dst = loop {
                let d = rng.below(n);
                if d != src {
                    break d;
                }
            };
            flows.push(FlowSpec {
                src: NodeId(src as u32),
                dst: NodeId(dst as u32),
                start: SimDuration::from_secs_f64(t),
                packets: 125, // 100 KB / 800 B
                loss_tolerance: 0.0,
                initial_rate_pps: None,
            });
            t += rng.exponential(400.0);
        }
    }
    flows
}

fn main() {
    let args = Args::parse();
    let n = 14;
    let duration = args.pick(1800.0, 600.0); // 30-minute runs
    let runs = args.pick(5, 2);
    let protocols = [
        (TransportKind::Jtp, "JTP"),
        (TransportKind::Atp, "ATP"),
        (TransportKind::Tcp, "TCP"),
    ];

    let flows = testbed_workload(n, duration, 42);
    println!("workload: {} transfers over {duration:.0} s", flows.len());

    let mut rows_out = Vec::new();
    for (kind, name) in protocols {
        let mut cfg = ExperimentConfig::random(n)
            .transport(kind)
            .duration_s(duration)
            .seed(1400);
        cfg.flows = flows.clone();
        // Indoor testbed: stable, high-quality links.
        cfg.gilbert = GilbertConfig::stable();
        cfg.pathloss.base_loss = 0.02;
        let ms = run_many(&cfg, runs);
        let (epb, gp) = summarize_runs(&ms);
        let nruns = ms.len() as f64;
        rows_out.push(Row {
            protocol: name.into(),
            energy_uj_per_bit: epb.mean,
            goodput_kbps: gp.mean,
            source_rtx: ms
                .iter()
                .map(|m| m.source_retransmissions as f64)
                .sum::<f64>()
                / nruns,
            queue_drops: ms.iter().map(|m| m.queue_drops as f64).sum::<f64>() / nruns,
        });
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.protocol.clone(),
                format!("{:.4}", r.energy_uj_per_bit),
                format!("{:.3}", r.goodput_kbps),
                format!("{:.1}", r.source_rtx),
                format!("{:.1}", r.queue_drops),
            ]
        })
        .collect();
    print_table(
        "Table 2: JAVeLEN testbed surrogate (14 nodes, stable links)",
        &[
            "protocol",
            "energy(uJ/bit)",
            "goodput(kbps)",
            "srcRtx",
            "qDrops",
        ],
        &rows,
    );
    println!("\npaper (absolute, real radios): JTP 5.4 uJ/bit / 0.63 kbps,");
    println!("ATP 6.8 uJ/bit / 0.44 kbps, TCP 10.5 uJ/bit / 0.17 kbps");

    let (j, a, t) = (&rows_out[0], &rows_out[1], &rows_out[2]);
    println!(
        "\nshape check: JTP lowest energy per bit: {}",
        if j.energy_uj_per_bit < a.energy_uj_per_bit && j.energy_uj_per_bit < t.energy_uj_per_bit {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "shape check: goodput ordering JTP > ATP > TCP: {}",
        if j.goodput_kbps >= a.goodput_kbps && a.goodput_kbps >= t.goodput_kbps {
            "PASS"
        } else {
            "FAIL"
        }
    );
    // Divergence note: in the paper's testbed ATP also beat TCP on energy;
    // here they are within a few percent of each other (our byte-propor-
    // tional share of ACK energy is kinder to TCP's small ACKs than real
    // radios were). See EXPERIMENTS.md.
    maybe_write_json(&args, &rows_out);
}
