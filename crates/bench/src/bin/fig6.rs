//! Figure 6 — The effect of cache size.
//!
//! One JTP flow over linear networks of several sizes; the in-network
//! cache capacity is swept. The paper observes a sudden drop in the number
//! of source retransmissions once caches are large enough to hold missing
//! packets until the (feedback-delayed) SNACK arrives, and little further
//! improvement beyond that.

use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, ExperimentConfig, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    net_size: usize,
    cache_size: usize,
    source_rtx_mean: f64,
    cache_hits_mean: f64,
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = args.pick(vec![4, 6, 8], vec![5]);
    let caches: Vec<usize> = args.pick(vec![0, 1, 2, 4, 8, 16, 32, 64, 128], vec![0, 4, 32]);
    let runs = args.pick(10, 2);
    let packets = args.pick(300, 100);

    let mut points = Vec::new();
    for &n in &sizes {
        for &c in &caches {
            let mut cfg = ExperimentConfig::linear(n)
                .transport(TransportKind::Jtp)
                .duration_s(args.pick(3000.0, 1200.0))
                .seed(600)
                .bulk_flow(packets, 10.0, 0.0);
            cfg.jtp.cache_capacity = c;
            if c == 0 {
                cfg.jtp.caching_enabled = false;
            }
            cfg.gilbert = GilbertConfig {
                bad_fraction: 0.25,
                ..GilbertConfig::paper_default()
            };
            let ms = run_many(&cfg, runs);
            let rtx = ms
                .iter()
                .map(|m| m.source_retransmissions as f64)
                .sum::<f64>()
                / ms.len() as f64;
            let hits = ms.iter().map(|m| m.local_recoveries as f64).sum::<f64>() / ms.len() as f64;
            points.push(Point {
                net_size: n,
                cache_size: c,
                source_rtx_mean: rtx,
                cache_hits_mean: hits,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.net_size.to_string(),
                p.cache_size.to_string(),
                format!("{:.1}", p.source_rtx_mean),
                format!("{:.1}", p.cache_hits_mean),
            ]
        })
        .collect();
    print_table(
        "Fig 6: source retransmissions vs cache size",
        &["netSize", "cache(pkts)", "source rtx", "cache hits"],
        &rows,
    );

    // Shape check: for each size, the largest cache has (far) fewer source
    // retransmissions than no cache.
    let mut pass = true;
    for &n in &sizes {
        let at = |c: usize| {
            points
                .iter()
                .find(|p| p.net_size == n && p.cache_size == c)
                .unwrap()
                .source_rtx_mean
        };
        let (none, big) = (at(0), at(*caches.last().unwrap()));
        if big > none {
            pass = false;
        }
        println!(
            "netSize {n}: rtx cache=0 {none:.1} -> cache={} {big:.1}",
            caches.last().unwrap()
        );
    }
    println!(
        "\nshape check: large caches eliminate most source rtx: {}",
        if pass { "PASS" } else { "FAIL" }
    );
    maybe_write_json(&args, &points);
}
