//! Figure 11 — Random topologies with random-waypoint mobility.
//!
//! A 15-node network; every node moves (mean leg 47 m, mean pause 100 s)
//! at speeds 0.1 / 1 / 5 m/s. 5 flows with random endpoints.
//!
//! (a) energy per delivered bit and (b) goodput per speed for JTP/ATP/TCP;
//! (c) the split between end-to-end (source) retransmissions and locally
//! recovered packets (cache hits), normalised by data delivered — the
//! paper's evidence that caches help even when paths keep changing.

use jtp_bench::{maybe_write_json, print_table, random_flows, with_flows, Args};
use jtp_netsim::{run_many, summarize_runs, ExperimentConfig, TransportKind};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    speed_mps: f64,
    protocol: String,
    energy_uj_per_bit: f64,
    goodput_kbps: f64,
    source_rtx_per_kpkt: f64,
    cache_hits_per_kpkt: f64,
}

fn main() {
    let args = Args::parse();
    let n = 15;
    let speeds: Vec<f64> = args.pick(vec![0.1, 1.0, 5.0], vec![1.0]);
    let runs = args.pick(10, 2);
    let duration = args.pick(4000.0, 1200.0);
    let packets = u32::MAX / 2; // long-lived flows, steady-state metrics
    let protocols = [
        (TransportKind::Jtp, "jtp"),
        (TransportKind::Atp, "atp"),
        (TransportKind::Tcp, "tcp"),
    ];

    let mut points = Vec::new();
    for &speed in &speeds {
        let flows = random_flows(n, 5, packets, duration / 8.0, duration / 5.0, 1100);
        for (kind, name) in protocols {
            let cfg = with_flows(
                ExperimentConfig::random(n)
                    .transport(kind)
                    .duration_s(duration)
                    .seed(1100)
                    .mobile(speed),
                flows.clone(),
            );
            let ms = run_many(&cfg, runs);
            let (epb, gp) = summarize_runs(&ms);
            let delivered: f64 = ms.iter().map(|m| m.delivered_packets as f64).sum();
            let rtx: f64 = ms.iter().map(|m| m.source_retransmissions as f64).sum();
            let hits: f64 = ms.iter().map(|m| m.local_recoveries as f64).sum();
            let per_kpkt = |x: f64| {
                if delivered > 0.0 {
                    x / delivered * 1000.0
                } else {
                    0.0
                }
            };
            points.push(Point {
                speed_mps: speed,
                protocol: name.into(),
                energy_uj_per_bit: epb.mean,
                goodput_kbps: gp.mean,
                source_rtx_per_kpkt: per_kpkt(rtx),
                cache_hits_per_kpkt: per_kpkt(hits),
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.speed_mps),
                p.protocol.clone(),
                format!("{:.4}", p.energy_uj_per_bit),
                format!("{:.3}", p.goodput_kbps),
                format!("{:.1}", p.source_rtx_per_kpkt),
                format!("{:.1}", p.cache_hits_per_kpkt),
            ]
        })
        .collect();
    print_table(
        "Fig 11: mobility (15 nodes, random waypoint)",
        &[
            "speed(m/s)",
            "proto",
            "energy(uJ/bit)",
            "goodput(kbps)",
            "srcRtx/kpkt",
            "cacheHits/kpkt",
        ],
        &rows,
    );

    let mut energy_ok = true;
    let mut goodput_ok = true;
    for &speed in &speeds {
        let get = |proto: &str| {
            points
                .iter()
                .find(|p| p.speed_mps == speed && p.protocol == proto)
                .unwrap()
        };
        let (j, a, t) = (get("jtp"), get("atp"), get("tcp"));
        // Under heavy churn JTP spends energy pushing reliable data
        // through (2x the goodput); its energy per bit must stay within a
        // small band of the best protocol, and win outright when routes
        // are near-static.
        let best = a.energy_uj_per_bit.min(t.energy_uj_per_bit);
        if j.energy_uj_per_bit > best * 1.10 {
            energy_ok = false;
        }
        if j.goodput_kbps < a.goodput_kbps || j.goodput_kbps < t.goodput_kbps {
            goodput_ok = false;
        }
    }
    println!(
        "\nshape check: JTP energy within 10% of best at every speed: {}",
        if energy_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "shape check: JTP highest goodput at every speed: {}",
        if goodput_ok { "PASS" } else { "FAIL" }
    );
    let cache_useful = points
        .iter()
        .filter(|p| p.protocol == "jtp")
        .all(|p| p.cache_hits_per_kpkt > 0.0);
    println!(
        "shape check: caches still recover packets under mobility: {}",
        if cache_useful { "PASS" } else { "FAIL" }
    );
    maybe_write_json(&args, &points);
}
