//! Per-scenario reports: run a slice of the canonical catalog through the
//! report subscriber stack and emit netbench-style artifacts — one
//! deterministic JSON document (byte-identical across runs of the same
//! build; the CI `report-smoke` job runs this twice and `cmp`s) plus a
//! rendered markdown report with flow timelines, queue-depth histograms,
//! drop/flood breakdowns and the wall-clock time accounting.
//!
//! Run: `cargo run --release -p jtp-bench --bin scenario_report -- --quick
//! --json BENCH_report.json --md BENCH_report.md [--only <substr>]`
//!
//! Args are hand-rolled (not `jtp_bench::Args`) because this binary has
//! flags of its own: `--md <path>` for the markdown artifact and
//! `--only <substr>` to restrict the catalog slice by scenario name.

use jtp_netsim::{render_markdown, run_report, Scenario, ScenarioReport, TransportKind};
use serde::Serialize;
use std::path::PathBuf;

struct Args {
    quick: bool,
    json: Option<PathBuf>,
    md: Option<PathBuf>,
    only: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        quick: false,
        json: None,
        md: None,
        only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => out.quick = true,
            "--json" => out.json = it.next().map(PathBuf::from),
            "--md" => out.md = it.next().map(PathBuf::from),
            "--only" => out.only = it.next(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: scenario_report [--quick] [--json <path>] [--md <path>] \
                     [--only <substr>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

#[derive(Serialize)]
struct Bundle {
    quick: bool,
    reports: Vec<ScenarioReport>,
}

fn main() {
    let args = parse_args();
    // Quick mode keeps the cheap half of the catalog (static + dynamics
    // entries); the full run reports every catalog scenario.
    let scenarios: Vec<Scenario> = Scenario::catalog()
        .into_iter()
        .filter(|sc| {
            args.only
                .as_deref()
                .map(|s| sc.name.contains(s))
                .unwrap_or(true)
        })
        .filter(|sc| !args.quick || (sc.battery.is_none() && sc.mobile_mps.is_none()))
        .collect();
    if scenarios.is_empty() {
        eprintln!("no catalog scenario matches the filter");
        std::process::exit(2);
    }

    let mut reports = Vec::new();
    let mut markdown = String::new();
    for sc in &scenarios {
        let (report, time) = run_report(sc, TransportKind::Jtp);
        println!(
            "{:<28} delivered {:>6} ({:>5.1}%) | {:>7.2} kbit/s | {:>8.3} µJ/bit | {} floods",
            report.scenario,
            report.delivered_packets,
            report.delivery_ratio * 100.0,
            report.goodput_kbps,
            report.energy_per_bit_uj,
            report.events.total_floods,
        );
        markdown.push_str(&render_markdown(&report, Some(&time)));
        markdown.push('\n');
        reports.push(report);
    }

    if let Some(path) = &args.md {
        std::fs::write(path, &markdown).expect("write markdown report");
        println!("wrote {}", path.display());
    }
    if let Some(path) = &args.json {
        let bundle = Bundle {
            quick: args.quick,
            reports,
        };
        let json = serde_json::to_string(&bundle).expect("reports serialise");
        std::fs::write(path, json).expect("write JSON report");
        println!("wrote {}", path.display());
    }
}
