//! §4.1 analysis — the in-network caching gain, closed form vs simulation.
//!
//! Validates eq. (5) (JTP with caching: `E[T] = k·H/(1−p)`) and eq. (6)
//! (JNC) against measured MAC transmission counts on linear paths with a
//! uniform per-attempt loss `p`, and prints the predicted-vs-measured gain
//! factor `1/(1−pⁿ)^{H−1}`.

use jtp::analysis::{caching_gain, expected_tx_with_caching, expected_tx_without_caching};
use jtp_bench::{maybe_write_json, print_table, Args};
use jtp_netsim::{run_many, ExperimentConfig, TransportKind};
use jtp_phys::gilbert::GilbertConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    hops: u32,
    p: f64,
    predicted_jtp_tx_per_pkt: f64,
    measured_jtp_tx_per_pkt: f64,
    predicted_jnc_tx_per_pkt: f64,
    measured_jnc_tx_per_pkt: f64,
    predicted_gain: f64,
}

fn main() {
    let args = Args::parse();
    let hop_counts: Vec<u32> = args.pick(vec![2, 4, 6], vec![3]);
    let ps: Vec<f64> = args.pick(vec![0.1, 0.25], vec![0.2]);
    let runs = args.pick(6, 2);
    let packets = args.pick(300, 100);

    let mut points = Vec::new();
    for &hops in &hop_counts {
        for &p in &ps {
            let n = hops as usize + 1;
            let mk = |kind: TransportKind| {
                let mut cfg = ExperimentConfig::linear(n)
                    .transport(kind)
                    .duration_s(args.pick(4000.0, 1500.0))
                    .seed(1500)
                    .bulk_flow(packets, 10.0, 0.0);
                // Uniform per-attempt loss: no good/bad alternation.
                cfg.gilbert = GilbertConfig::stable();
                cfg.pathloss.base_loss = p;
                cfg
            };
            // Measure data transmissions per delivered packet. ACK traffic
            // is excluded analytically (the closed forms count data only):
            // we subtract it via the delivered count and MAC attempts on
            // data frames being dominant; attempts include ACK frames, so
            // compare against prediction + measured ACK share.
            let measure = |kind: TransportKind| -> f64 {
                let ms = run_many(&mk(kind), runs);
                let tx: f64 = ms.iter().map(|m| m.mac_attempts as f64).sum();
                let acks: f64 = ms.iter().map(|m| m.feedbacks_sent as f64).sum();
                let delivered: f64 = ms.iter().map(|m| m.delivered_packets as f64).sum();
                // Each feedback crosses ~hops links once (+ MAC retries it
                // shares with data); subtract the first-order ACK share.
                ((tx - acks * hops as f64) / delivered).max(0.0)
            };
            let measured_jtp = measure(TransportKind::Jtp);
            let measured_jnc = measure(TransportKind::Jnc);
            points.push(Point {
                hops,
                p,
                predicted_jtp_tx_per_pkt: expected_tx_with_caching(1, hops, p),
                measured_jtp_tx_per_pkt: measured_jtp,
                predicted_jnc_tx_per_pkt: expected_tx_without_caching(1, hops, p, 5),
                measured_jnc_tx_per_pkt: measured_jnc,
                predicted_gain: caching_gain(hops, p, 5),
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.hops.to_string(),
                format!("{:.2}", pt.p),
                format!("{:.2}", pt.predicted_jtp_tx_per_pkt),
                format!("{:.2}", pt.measured_jtp_tx_per_pkt),
                format!("{:.2}", pt.predicted_jnc_tx_per_pkt),
                format!("{:.2}", pt.measured_jnc_tx_per_pkt),
                format!("{:.3}", pt.predicted_gain),
            ]
        })
        .collect();
    print_table(
        "Eqs 5/6: node transmissions per delivered packet",
        &[
            "H",
            "p",
            "eq5(jtp)",
            "meas(jtp)",
            "eq6(jnc)",
            "meas(jnc)",
            "gain",
        ],
        &rows,
    );

    let mut pass = true;
    for pt in &points {
        // Within 35% of the closed form (finite caches, feedback delay and
        // the loss-tolerance attempt budgets make the match approximate).
        let rel = (pt.measured_jtp_tx_per_pkt - pt.predicted_jtp_tx_per_pkt).abs()
            / pt.predicted_jtp_tx_per_pkt;
        if rel > 0.35 {
            pass = false;
            println!("H={} p={}: JTP rel err {:.2}", pt.hops, pt.p, rel);
        }
    }
    println!(
        "\nshape check: measured JTP cost within 35% of eq. (5): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    let ordering = points
        .iter()
        .all(|pt| pt.measured_jnc_tx_per_pkt >= pt.measured_jtp_tx_per_pkt * 0.95);
    println!(
        "shape check: JNC never cheaper than JTP: {}",
        if ordering { "PASS" } else { "FAIL" }
    );
    maybe_write_json(&args, &points);
}
