//! Criterion benches of whole simulation runs — one compact scenario per
//! experiment family, so `cargo bench` exercises the code paths behind
//! every figure/table and tracks simulator throughput over time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jtp_netsim::{run_experiment, ExperimentConfig, FlowSpec, TransportKind};
use jtp_sim::{NodeId, SimDuration};

fn small(transport: TransportKind) -> ExperimentConfig {
    ExperimentConfig::linear(5)
        .transport(transport)
        .duration_s(300.0)
        .seed(1)
        .bulk_flow(60, 5.0, 0.0)
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("run/linear5_60pkts");
    g.sample_size(10);
    for (kind, name) in [
        (TransportKind::Jtp, "jtp"),
        (TransportKind::Jnc, "jnc"),
        (TransportKind::Tcp, "tcp"),
        (TransportKind::Atp, "atp"),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(run_experiment(&small(kind)))));
    }
    g.finish();
}

fn bench_reliability_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("run/reliability_levels");
    g.sample_size(10);
    for lt in [0.0, 0.2] {
        g.bench_function(format!("jtp{}", (lt * 100.0) as u32), |b| {
            let cfg = ExperimentConfig::linear(5)
                .transport(TransportKind::Jtp)
                .duration_s(300.0)
                .seed(2)
                .bulk_flow(60, 5.0, lt);
            b.iter(|| black_box(run_experiment(&cfg)))
        });
    }
    g.finish();
}

fn bench_random_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("run/random15");
    g.sample_size(10);
    let mut cfg = ExperimentConfig::random(15)
        .transport(TransportKind::Jtp)
        .duration_s(300.0)
        .seed(3);
    for (i, (s, d)) in [(0u32, 14u32), (3, 11)].iter().enumerate() {
        cfg = cfg.flow(FlowSpec {
            src: NodeId(*s),
            dst: NodeId(*d),
            start: SimDuration::from_secs(10 + i as u64 * 5),
            packets: 40,
            loss_tolerance: 0.0,
            initial_rate_pps: None,
        });
    }
    let static_cfg = cfg.clone();
    g.bench_function("static", |b| {
        b.iter(|| black_box(run_experiment(&static_cfg)))
    });
    let mobile_cfg = cfg.mobile(1.0);
    g.bench_function("mobile", |b| {
        b.iter(|| black_box(run_experiment(&mobile_cfg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_protocols,
    bench_reliability_levels,
    bench_random_topology
);
criterion_main!(benches);
