//! Criterion micro-benchmarks of the hot paths: the event queue, packet
//! codecs, reliability math, LRU cache, flip-flop monitor and the TDMA
//! schedule.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jtp::packet::{AckPacket, DataPacket, SeqRange};
use jtp::{FlipFlopMonitor, PacketCache};
use jtp_mac::TdmaSchedule;
use jtp_sim::{EventQueue, FlowId, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                // Scatter times deterministically.
                q.schedule_at(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

fn bench_codecs(c: &mut Criterion) {
    let pkt = DataPacket {
        flow: FlowId(3),
        seq: 1234,
        rate_pps: 2.5,
        loss_tolerance: 0.10,
        remaining_hops: 4,
        energy_budget_nj: 5_000_000,
        energy_used_nj: 1_200_000,
        deadline_ms: 0,
        payload_len: 800,
    };
    c.bench_function("codec/data_encode", |b| {
        b.iter(|| black_box(pkt.to_bytes()))
    });
    let bytes = pkt.to_bytes();
    c.bench_function("codec/data_decode", |b| {
        b.iter(|| black_box(DataPacket::decode(&bytes).unwrap()))
    });
    let ack = AckPacket {
        flow: FlowId(3),
        cum_ack: 100,
        snack: (0..10).map(|i| SeqRange::single(100 + i * 3)).collect(),
        locally_recovered: (0..5).map(|i| SeqRange::single(200 + i * 3)).collect(),
        rate_pps: 3.25,
        energy_budget_nj: 7_000_000,
        timeout: SimDuration::from_secs(10),
    };
    c.bench_function("codec/ack_roundtrip", |b| {
        b.iter(|| {
            let bytes = ack.to_bytes();
            black_box(AckPacket::decode(&bytes).unwrap())
        })
    });
}

fn bench_reliability(c: &mut Criterion) {
    c.bench_function("reliability/attempt_budget", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for hops in 1..8u32 {
                for p in [0.05f64, 0.2, 0.5] {
                    let q = jtp::reliability::per_hop_success_target(black_box(0.1), hops);
                    acc += jtp::reliability::max_attempts_for(q, p, 5);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/insert_lookup_1k", |b| {
        let mk = |seq: u32| DataPacket {
            flow: FlowId(1),
            seq,
            rate_pps: 1.0,
            loss_tolerance: 0.0,
            remaining_hops: 1,
            energy_budget_nj: 1,
            energy_used_nj: 0,
            deadline_ms: 0,
            payload_len: 800,
        };
        b.iter(|| {
            let mut cache = PacketCache::new(256);
            for s in 0..1000u32 {
                cache.insert(mk(s));
                if s % 3 == 0 {
                    black_box(cache.lookup(FlowId(1), s / 2));
                }
            }
            black_box(cache.len())
        })
    });
}

fn bench_monitor(c: &mut Criterion) {
    c.bench_function("monitor/flipflop_1k_samples", |b| {
        b.iter(|| {
            let mut m = FlipFlopMonitor::new(0.1, 0.1, 0.6, 3);
            for i in 0..1000 {
                let x = if i % 100 < 90 { 4.0 } else { 1.0 };
                black_box(m.observe(x + (i % 7) as f64 * 0.01));
            }
            black_box(m.mean())
        })
    });
}

fn bench_schedule(c: &mut Criterion) {
    c.bench_function("tdma/owner_10k_slots", |b| {
        b.iter(|| {
            let mut s = TdmaSchedule::new(25, SimDuration::from_millis(25), 42);
            let mut acc = 0u32;
            for slot in 0..10_000u64 {
                acc = acc.wrapping_add(s.owner(slot).0);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_codecs,
    bench_reliability,
    bench_cache,
    bench_monitor,
    bench_schedule
);
criterion_main!(benches);
