//! Property-based tests of the physical-layer stochastic models.
//!
//! * the Gilbert-Elliott process — constructed with the same
//!   `(seed, link_id)` substream derivation the simulator's flat channel
//!   table uses — must converge to its stationary distribution: the
//!   empirical bad-state fraction approaches `bad_fraction`, and the
//!   empirical per-attempt loss approaches the stationary mixture
//!   `(1−f)·baseline + f·bad_loss`;
//! * random-waypoint mobility must never leave the deployment field, for
//!   any speed, field size, start point or seed.

use jtp_phys::gilbert::{GilbertConfig, GilbertElliott};
use jtp_phys::{Field, MobilityModel, Point, RandomWaypoint};
use jtp_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Long-run empirical loss of the lazily-advanced process matches the
    /// stationary mixture of the two states.
    #[test]
    fn gilbert_elliott_loss_converges_to_stationary_mixture(
        seed in any::<u64>(),
        f in 0.05f64..0.35,
        mean_bad_s in 1.0f64..5.0,
        baseline in 0.01f64..0.2,
    ) {
        let cfg = GilbertConfig {
            bad_fraction: f,
            mean_bad_duration: SimDuration::from_secs_f64(mean_bad_s),
            ..GilbertConfig::paper_default()
        };
        let bad_loss = (baseline * cfg.bad_loss_multiplier)
            .max(cfg.bad_loss_floor)
            .min(1.0);
        let expected = (1.0 - f) * baseline + f * bad_loss;
        // Average over several links (the flat table's substream layout:
        // link_id = lo·n + hi) to tighten the estimate; 30k s per link,
        // sampled at 0.5 s, is ≳ 2000 bad dwells in the worst case.
        let n = 12u64;
        let (mut loss_sum, mut samples) = (0.0, 0u64);
        for (lo, hi) in [(0u64, 1u64), (2, 5), (3, 11), (7, 8)] {
            let mut ge = GilbertElliott::new(cfg, seed, lo * n + hi);
            let mut t = 0.0;
            while t < 30_000.0 {
                loss_sum += ge.loss_prob(SimTime::from_secs_f64(t), baseline);
                samples += 1;
                t += 0.5;
            }
        }
        let empirical = loss_sum / samples as f64;
        // The dominant error is the bad-fraction estimate; scale the
        // tolerance by the bad/good loss gap it multiplies.
        let tol = 0.03 * (bad_loss - baseline) + 0.01;
        prop_assert!(
            (empirical - expected).abs() < tol,
            "empirical loss {empirical:.4} vs stationary {expected:.4} (tol {tol:.4}, f={f:.3})"
        );
    }

    /// Empirical bad-state dwell fraction converges to `bad_fraction`.
    #[test]
    fn gilbert_elliott_bad_fraction_converges(
        seed in any::<u64>(),
        f in 0.05f64..0.35,
    ) {
        let cfg = GilbertConfig {
            bad_fraction: f,
            ..GilbertConfig::paper_default()
        };
        let mut bad = 0u64;
        let mut total = 0u64;
        for link in 0..6u64 {
            let mut ge = GilbertElliott::new(cfg, seed, link);
            let mut t = 0.0;
            while t < 30_000.0 {
                if ge.loss_prob(SimTime::from_secs_f64(t), 0.0) > 0.0 {
                    bad += 1;
                }
                total += 1;
                t += 0.5;
            }
        }
        let empirical = bad as f64 / total as f64;
        prop_assert!(
            (empirical - f).abs() < 0.035,
            "bad fraction {empirical:.4}, expected {f:.4}"
        );
    }

    /// Random-waypoint positions stay inside the field forever, for any
    /// parameterisation (start points outside are clamped on entry).
    #[test]
    fn random_waypoint_never_escapes_the_field(
        seed in any::<u64>(),
        node in 0u64..64,
        speed in 0.1f64..5.0,
        width in 30.0f64..400.0,
        height in 30.0f64..400.0,
        sx in -50.0f64..450.0,
        sy in -50.0f64..450.0,
        mean_leg in 5.0f64..120.0,
        mean_pause in 0.5f64..150.0,
    ) {
        let field = Field::new(width, height);
        let mut m = RandomWaypoint::new(
            field,
            Point::new(sx, sy),
            speed,
            mean_leg,
            mean_pause,
            seed,
            node,
        );
        let mut t = 0.0;
        while t < 2_000.0 {
            let p = m.position_at(SimTime::from_secs_f64(t));
            prop_assert!(
                field.contains(p),
                "escaped {field:?} at t={t}: {p:?} (speed {speed}, leg {mean_leg})"
            );
            t += 3.7;
        }
    }
}
