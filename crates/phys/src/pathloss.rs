//! Distance → per-attempt frame-loss probability.
//!
//! The paper controls loss directly ("the value of the average pathloss of
//! each link alternates between a good state and a bad state"), so our model
//! maps geometry to a *baseline* loss probability which the
//! [Gilbert-Elliott](crate::gilbert) process then modulates:
//!
//! * within `full_quality_range` the baseline loss is `base_loss`,
//! * between `full_quality_range` and `max_range` loss degrades smoothly
//!   (quadratic in normalized excess distance) up to `edge_loss`,
//! * beyond `max_range` frames are never received (loss = 1), which also
//!   defines connectivity for topology generation and neighbour discovery.

/// Distance-based loss model shared by all links.
#[derive(Clone, Copy, Debug)]
pub struct PathLoss {
    /// Distance (m) up to which the link shows only the base loss.
    pub full_quality_range: f64,
    /// Maximum communication range (m); loss is 1 beyond it.
    pub max_range: f64,
    /// Per-attempt loss probability within full quality range.
    pub base_loss: f64,
    /// Per-attempt loss probability right at `max_range`.
    pub edge_loss: f64,
}

impl PathLoss {
    /// A model tuned for the paper's scenarios: ~47 m legs, fields sized for
    /// connectivity. Good quality to 60 m, usable to 100 m.
    pub fn javelen_default() -> Self {
        PathLoss {
            full_quality_range: 60.0,
            max_range: 100.0,
            base_loss: 0.05,
            edge_loss: 0.6,
        }
    }

    /// Validate parameters (ranges ordered, probabilities in `[0,1]`).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.full_quality_range > 0.0 && self.max_range >= self.full_quality_range) {
            return Err(format!(
                "ranges must satisfy 0 < full ({}) <= max ({})",
                self.full_quality_range, self.max_range
            ));
        }
        for (name, p) in [("base_loss", self.base_loss), ("edge_loss", self.edge_loss)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0,1]"));
            }
        }
        if self.edge_loss < self.base_loss {
            return Err("edge_loss must be >= base_loss".into());
        }
        Ok(())
    }

    /// Per-attempt loss probability at the given distance (m).
    pub fn loss_at(&self, distance: f64) -> f64 {
        if distance <= self.full_quality_range {
            self.base_loss
        } else if distance >= self.max_range {
            1.0
        } else {
            // Quadratic ramp: gentle right after full-quality range,
            // steep near the edge — matching the cliff-like behaviour of
            // real low-power radios.
            let t =
                (distance - self.full_quality_range) / (self.max_range - self.full_quality_range);
            self.base_loss + (self.edge_loss - self.base_loss) * t * t
        }
    }

    /// True when two radios at this distance can communicate at all.
    pub fn in_range(&self, distance: f64) -> bool {
        distance < self.max_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        PathLoss::javelen_default().validate().unwrap();
    }

    #[test]
    fn loss_regions() {
        let pl = PathLoss::javelen_default();
        assert_eq!(pl.loss_at(0.0), pl.base_loss);
        assert_eq!(pl.loss_at(60.0), pl.base_loss);
        assert_eq!(pl.loss_at(100.0), 1.0);
        assert_eq!(pl.loss_at(500.0), 1.0);
        let mid = pl.loss_at(80.0);
        assert!(mid > pl.base_loss && mid < pl.edge_loss);
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        let pl = PathLoss::javelen_default();
        let mut prev = 0.0;
        for d in 0..120 {
            let l = pl.loss_at(d as f64);
            assert!(l >= prev - 1e-12, "loss decreased at d={d}");
            prev = l;
        }
    }

    #[test]
    fn in_range_matches_max_range() {
        let pl = PathLoss::javelen_default();
        assert!(pl.in_range(99.9));
        assert!(!pl.in_range(100.0));
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut pl = PathLoss::javelen_default();
        pl.base_loss = 1.5;
        assert!(pl.validate().is_err());
        let mut pl = PathLoss::javelen_default();
        pl.max_range = 10.0;
        assert!(pl.validate().is_err());
        let mut pl = PathLoss::javelen_default();
        pl.edge_loss = 0.0;
        assert!(pl.validate().is_err());
    }
}
