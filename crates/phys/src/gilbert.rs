//! Two-state Gilbert-Elliott channel process.
//!
//! §6.1.1 of the paper: *"To capture the varying quality of wireless links,
//! the value of the average pathloss of each link alternates between a good
//! state (low loss) and a bad state (high loss). Each link is in bad state
//! approximately 10 % of the time. The average duration of the bad period is
//! 3 seconds."*
//!
//! Dwell times in each state are exponential. With mean bad dwell `T_b` and
//! bad-state fraction `f`, the mean good dwell is `T_b · (1−f)/f` (27 s for
//! the defaults). The process is advanced lazily: each query at time `now`
//! replays any state flips that occurred since the last query, using a
//! dedicated RNG substream so the channel evolution of one link never
//! perturbs another.

use jtp_sim::{SimDuration, SimRng, SimTime};

/// Channel state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelState {
    /// Low-loss state.
    Good,
    /// High-loss state (deep fade / interference burst).
    Bad,
}

/// Configuration of the two-state process.
#[derive(Clone, Copy, Debug)]
pub struct GilbertConfig {
    /// Long-run fraction of time spent in the bad state.
    pub bad_fraction: f64,
    /// Mean dwell time of the bad state.
    pub mean_bad_duration: SimDuration,
    /// Multiplier applied to the baseline loss probability in the bad state
    /// (capped at loss 1.0).
    pub bad_loss_multiplier: f64,
    /// Absolute minimum loss probability in the bad state, so that even
    /// short links suffer during fades.
    pub bad_loss_floor: f64,
}

impl GilbertConfig {
    /// The paper's §6.1.1 parameterisation: 10 % bad, 3 s mean bad dwell.
    pub fn paper_default() -> Self {
        GilbertConfig {
            bad_fraction: 0.10,
            mean_bad_duration: SimDuration::from_secs(3),
            bad_loss_multiplier: 8.0,
            bad_loss_floor: 0.5,
        }
    }

    /// A stable, always-good channel (used for the Table 2 testbed surrogate
    /// where "links are more stable and their quality is much better").
    pub fn stable() -> Self {
        GilbertConfig {
            bad_fraction: 0.0,
            mean_bad_duration: SimDuration::from_secs(3),
            bad_loss_multiplier: 1.0,
            bad_loss_floor: 0.0,
        }
    }

    /// Mean good-state dwell implied by the bad fraction.
    pub fn mean_good_duration(&self) -> SimDuration {
        if self.bad_fraction <= 0.0 {
            return SimDuration::MAX;
        }
        let ratio = (1.0 - self.bad_fraction) / self.bad_fraction;
        SimDuration::from_secs_f64(self.mean_bad_duration.as_secs_f64() * ratio)
    }
}

/// One link's lazily-advanced Gilbert-Elliott process.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    cfg: GilbertConfig,
    state: ChannelState,
    next_flip: SimTime,
    rng: SimRng,
}

impl GilbertElliott {
    /// Create the process for one directed link. `seed`/`link_id` select the
    /// RNG substream.
    pub fn new(cfg: GilbertConfig, seed: u64, link_id: u64) -> Self {
        let mut rng = SimRng::derive_indexed(seed, "gilbert", link_id);
        // Start in steady state: Bad with probability bad_fraction.
        let start_bad = cfg.bad_fraction > 0.0 && rng.chance(cfg.bad_fraction);
        let state = if start_bad {
            ChannelState::Bad
        } else {
            ChannelState::Good
        };
        let mut ge = GilbertElliott {
            cfg,
            state,
            next_flip: SimTime::ZERO,
            rng,
        };
        ge.next_flip = SimTime::ZERO + ge.sample_dwell();
        ge
    }

    fn sample_dwell(&mut self) -> SimDuration {
        let mean = match self.state {
            ChannelState::Good => self.cfg.mean_good_duration(),
            ChannelState::Bad => self.cfg.mean_bad_duration,
        };
        if mean == SimDuration::MAX {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(self.rng.exponential(mean.as_secs_f64()))
    }

    /// Advance the process to `now` and return the current state.
    pub fn state_at(&mut self, now: SimTime) -> ChannelState {
        while self.next_flip <= now {
            self.state = match self.state {
                ChannelState::Good => ChannelState::Bad,
                ChannelState::Bad => ChannelState::Good,
            };
            let dwell = self.sample_dwell();
            if dwell == SimDuration::MAX {
                self.next_flip = SimTime::MAX;
            } else {
                self.next_flip = self.next_flip.saturating_add(dwell);
            }
        }
        self.state
    }

    /// Effective per-attempt loss probability at `now`, given the link's
    /// distance-based baseline loss.
    pub fn loss_prob(&mut self, now: SimTime, baseline: f64) -> f64 {
        match self.state_at(now) {
            ChannelState::Good => baseline,
            ChannelState::Bad => (baseline * self.cfg.bad_loss_multiplier)
                .max(self.cfg.bad_loss_floor)
                .min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_good_duration_from_fraction() {
        let cfg = GilbertConfig::paper_default();
        // 10% bad, 3 s bad dwell => 27 s good dwell.
        assert!((cfg.mean_good_duration().as_secs_f64() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn stable_channel_never_goes_bad() {
        let mut ge = GilbertElliott::new(GilbertConfig::stable(), 1, 0);
        for s in 0..1000 {
            assert_eq!(
                ge.state_at(SimTime::from_secs_f64(s as f64 * 10.0)),
                ChannelState::Good
            );
        }
    }

    #[test]
    fn long_run_bad_fraction_near_ten_percent() {
        let cfg = GilbertConfig::paper_default();
        let mut bad_time = 0.0;
        let total = 40_000.0; // simulated seconds, sampled each 100 ms
                              // Average over several independent links to tighten the estimate.
        for link in 0..10 {
            let mut ge = GilbertElliott::new(cfg, 42, link);
            let mut t = 0.0;
            while t < total {
                if ge.state_at(SimTime::from_secs_f64(t)) == ChannelState::Bad {
                    bad_time += 0.1;
                }
                t += 0.1;
            }
        }
        let fraction = bad_time / (total * 10.0);
        assert!(
            (fraction - 0.10).abs() < 0.02,
            "bad fraction = {fraction}, expected ~0.10"
        );
    }

    #[test]
    fn bad_state_raises_loss() {
        let cfg = GilbertConfig::paper_default();
        let mut ge = GilbertElliott::new(cfg, 7, 3);
        // Find a time in each state.
        let mut saw_good = None;
        let mut saw_bad = None;
        let mut t = 0.0;
        while (saw_good.is_none() || saw_bad.is_none()) && t < 10_000.0 {
            match ge.state_at(SimTime::from_secs_f64(t)) {
                ChannelState::Good => saw_good = Some(t),
                ChannelState::Bad => saw_bad = Some(t),
            }
            t += 0.5;
        }
        let (tg, tb) = (saw_good.unwrap(), saw_bad.unwrap());
        // Query a fresh process in time order to compare losses.
        let mut ge2 = GilbertElliott::new(cfg, 7, 3);
        let (first, second) = if tg < tb { (tg, tb) } else { (tb, tg) };
        let l1 = ge2.loss_prob(SimTime::from_secs_f64(first), 0.05);
        let l2 = ge2.loss_prob(SimTime::from_secs_f64(second), 0.05);
        let (good_loss, bad_loss) = if tg < tb { (l1, l2) } else { (l2, l1) };
        assert_eq!(good_loss, 0.05);
        assert!(bad_loss >= 0.5, "bad loss {bad_loss} should hit the floor");
    }

    #[test]
    fn loss_never_exceeds_one() {
        let cfg = GilbertConfig {
            bad_loss_multiplier: 100.0,
            ..GilbertConfig::paper_default()
        };
        let mut ge = GilbertElliott::new(cfg, 9, 0);
        for s in 0..2000 {
            let l = ge.loss_prob(SimTime::from_secs_f64(s as f64), 0.3);
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn deterministic_given_seed_and_link() {
        let cfg = GilbertConfig::paper_default();
        let mut a = GilbertElliott::new(cfg, 5, 2);
        let mut b = GilbertElliott::new(cfg, 5, 2);
        for s in 0..500 {
            let t = SimTime::from_secs_f64(s as f64 * 0.7);
            assert_eq!(a.state_at(t), b.state_at(t));
        }
    }

    #[test]
    fn different_links_evolve_differently() {
        let cfg = GilbertConfig::paper_default();
        let mut a = GilbertElliott::new(cfg, 5, 0);
        let mut b = GilbertElliott::new(cfg, 5, 1);
        let mut differs = false;
        for s in 0..2000 {
            let t = SimTime::from_secs_f64(s as f64 * 0.5);
            if a.state_at(t) != b.state_at(t) {
                differs = true;
                break;
            }
        }
        assert!(differs, "independent links should diverge");
    }
}
