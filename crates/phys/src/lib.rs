//! # jtp-phys — physical-layer models
//!
//! The models that stand in for the JAVeLEN radios and the OPNET channel in
//! the paper's evaluation:
//!
//! * [`geom`] — 2-D positions and fields,
//! * [`pathloss`] — distance → per-attempt frame loss probability,
//! * [`gilbert`] — the two-state good/bad channel process the paper uses for
//!   linear-topology experiments ("the value of the average pathloss of each
//!   link alternates between a good state and a bad state. Each link is in
//!   bad state approximately 10 % of the time. The average duration of the
//!   bad period is 3 seconds", §6.1.1),
//! * [`energy`] — the link-layer energy monitor ("computes the energy spent
//!   for the transmission of each transport-layer packet based on the
//!   transmission power, the radio's datarate and the packet's length",
//!   §6.1), per-node accumulators, and finite [`Battery`] reservoirs that
//!   close the loop from consumption to node death,
//! * [`mobility`] — random-waypoint mobility (random direction, mean leg
//!   47 m, mean pause 100 s; speeds 0.1 / 1 / 5 m/s, §6.1.2),
//! * [`spatial`] — a uniform spatial hash over positions so per-tick
//!   neighbour discovery is O(n·k) instead of the all-pairs scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod geom;
pub mod gilbert;
pub mod mobility;
pub mod pathloss;
pub mod spatial;

pub use energy::{Battery, BatteryConfig, EnergyMeter, RadioEnergyModel};
pub use geom::{Field, Point};
pub use gilbert::GilbertElliott;
pub use mobility::{MobilityModel, RandomWaypoint, Stationary};
pub use pathloss::PathLoss;
pub use spatial::SpatialGrid;
