//! Node mobility models.
//!
//! §6.1.2 of the paper: *"We used the random way point mobility model in
//! which each node chooses a random direction and moves in that direction
//! for an average distance of 47 m. There is an average pause of 100 s
//! between movements for each node."* Speeds evaluated: 0.1, 1 and 5 m/s.
//!
//! Models are advanced lazily like the channel process: querying a position
//! at time `now` replays all completed legs/pauses since the last query
//! from the node's dedicated RNG substream.

use crate::geom::{Field, Point};
use jtp_sim::{SimRng, SimTime};

/// A mobility model answers "where is this node at time t?" for
/// non-decreasing queries of `t`.
pub trait MobilityModel {
    /// Position at time `now`. Implementations may assume `now` never
    /// decreases between calls.
    fn position_at(&mut self, now: SimTime) -> Point;

    /// True if the node can ever move (lets assemblies skip topology
    /// refresh work for fully static networks).
    fn is_mobile(&self) -> bool;
}

/// A node that never moves.
#[derive(Clone, Copy, Debug)]
pub struct Stationary {
    /// The fixed position.
    pub position: Point,
}

impl Stationary {
    /// Place a stationary node.
    pub fn new(position: Point) -> Self {
        Stationary { position }
    }
}

impl MobilityModel for Stationary {
    fn position_at(&mut self, _now: SimTime) -> Point {
        self.position
    }
    fn is_mobile(&self) -> bool {
        false
    }
}

/// Phase of the random-waypoint process.
#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Paused at a point until the stored time.
    Paused { until: SimTime },
    /// Moving from `from` towards `to`, departing at `start` and arriving at
    /// `arrive`.
    Moving {
        from: Point,
        to: Point,
        start: SimTime,
        arrive: SimTime,
    },
}

/// Random-waypoint mobility with the paper's leg/pause structure.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    field: Field,
    speed_mps: f64,
    mean_leg_m: f64,
    mean_pause_s: f64,
    position: Point,
    phase: Phase,
    rng: SimRng,
}

impl RandomWaypoint {
    /// Create a mobile node starting at `start`.
    ///
    /// * `speed_mps` — constant movement speed (paper: 0.1 / 1 / 5 m/s),
    /// * `mean_leg_m` — exponential mean of per-leg distance (paper: 47 m),
    /// * `mean_pause_s` — exponential mean pause between legs (paper:
    ///   100 s).
    pub fn new(
        field: Field,
        start: Point,
        speed_mps: f64,
        mean_leg_m: f64,
        mean_pause_s: f64,
        seed: u64,
        node_id: u64,
    ) -> Self {
        assert!(speed_mps > 0.0, "speed must be positive");
        assert!(mean_leg_m > 0.0, "mean leg must be positive");
        let mut rng = SimRng::derive_indexed(seed, "waypoint", node_id);
        let first_pause = rng.exponential(mean_pause_s.max(f64::MIN_POSITIVE));
        RandomWaypoint {
            field,
            speed_mps,
            mean_leg_m,
            mean_pause_s,
            position: field.clamp(start),
            phase: Phase::Paused {
                until: SimTime::from_secs_f64(first_pause),
            },
            rng,
        }
    }

    /// The paper's parameterisation: mean leg 47 m, mean pause 100 s.
    pub fn paper_default(
        field: Field,
        start: Point,
        speed_mps: f64,
        seed: u64,
        node_id: u64,
    ) -> Self {
        Self::new(field, start, speed_mps, 47.0, 100.0, seed, node_id)
    }

    fn start_new_leg(&mut self, at: SimTime) {
        let dist = self.rng.exponential(self.mean_leg_m);
        let dir = self.rng.uniform(0.0, std::f64::consts::TAU);
        let target = self.field.clamp(Point::new(
            self.position.x + dist * dir.cos(),
            self.position.y + dist * dir.sin(),
        ));
        let actual = self.position.distance(target);
        let travel_s = actual / self.speed_mps;
        self.phase = Phase::Moving {
            from: self.position,
            to: target,
            start: at,
            arrive: at + jtp_sim::SimDuration::from_secs_f64(travel_s),
        };
    }

    fn start_pause(&mut self, at: SimTime) {
        let pause = self
            .rng
            .exponential(self.mean_pause_s.max(f64::MIN_POSITIVE));
        self.phase = Phase::Paused {
            until: at + jtp_sim::SimDuration::from_secs_f64(pause),
        };
    }
}

impl MobilityModel for RandomWaypoint {
    fn position_at(&mut self, now: SimTime) -> Point {
        loop {
            match self.phase {
                Phase::Paused { until } => {
                    if now < until {
                        return self.position;
                    }
                    self.start_new_leg(until);
                }
                Phase::Moving {
                    from,
                    to,
                    start,
                    arrive,
                } => {
                    if now >= arrive {
                        self.position = to;
                        self.start_pause(arrive);
                        continue;
                    }
                    let span = arrive.since(start).as_secs_f64();
                    let t = if span <= 0.0 {
                        1.0
                    } else {
                        now.since(start).as_secs_f64() / span
                    };
                    self.position = from.lerp(to, t);
                    return self.position;
                }
            }
        }
    }

    fn is_mobile(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field {
        Field::square(200.0)
    }

    #[test]
    fn stationary_never_moves() {
        let mut s = Stationary::new(Point::new(5.0, 6.0));
        assert!(!s.is_mobile());
        for t in 0..100 {
            assert_eq!(
                s.position_at(SimTime::from_secs_f64(t as f64 * 13.0)),
                Point::new(5.0, 6.0)
            );
        }
    }

    #[test]
    fn waypoint_stays_in_field() {
        let mut m = RandomWaypoint::paper_default(field(), Point::new(100.0, 100.0), 5.0, 3, 0);
        for t in 0..5000 {
            let p = m.position_at(SimTime::from_secs_f64(t as f64));
            assert!(field().contains(p), "escaped the field at t={t}: {p:?}");
        }
    }

    #[test]
    fn waypoint_actually_moves() {
        let mut m = RandomWaypoint::paper_default(field(), Point::new(100.0, 100.0), 1.0, 4, 1);
        let start = m.position_at(SimTime::ZERO);
        let later = m.position_at(SimTime::from_secs_f64(4000.0));
        // With pauses of mean 100 s and legs of mean 47 m, the node has
        // almost surely moved over 4000 s.
        assert!(start.distance(later) > 0.0);
    }

    #[test]
    fn speed_is_respected_during_motion() {
        let mut m = RandomWaypoint::paper_default(field(), Point::new(100.0, 100.0), 2.0, 5, 2);
        // Sample densely; displacement per second can never exceed speed.
        let mut prev = m.position_at(SimTime::ZERO);
        for t in 1..3000 {
            let now = SimTime::from_secs_f64(t as f64 * 0.5);
            let p = m.position_at(now);
            let d = prev.distance(p);
            // Tolerance covers microsecond rounding of leg arrival times.
            assert!(d <= 2.0 * 0.5 + 1e-4, "moved {d} m in 0.5 s at t={t}");
            prev = p;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomWaypoint::paper_default(field(), Point::new(50.0, 50.0), 1.0, 11, 7);
        let mut b = RandomWaypoint::paper_default(field(), Point::new(50.0, 50.0), 1.0, 11, 7);
        for t in 0..500 {
            let now = SimTime::from_secs_f64(t as f64 * 3.3);
            assert_eq!(a.position_at(now), b.position_at(now));
        }
    }

    #[test]
    fn different_nodes_wander_differently() {
        let mut a = RandomWaypoint::paper_default(field(), Point::new(50.0, 50.0), 1.0, 11, 0);
        let mut b = RandomWaypoint::paper_default(field(), Point::new(50.0, 50.0), 1.0, 11, 1);
        let t = SimTime::from_secs_f64(2000.0);
        assert_ne!(a.position_at(t), b.position_at(t));
    }

    #[test]
    fn slow_nodes_cover_less_ground() {
        let origin = Point::new(100.0, 100.0);
        // Expected displacement over a fixed horizon grows with speed.
        let mut total_slow = 0.0;
        let mut total_fast = 0.0;
        for node in 0..20 {
            let mut slow = RandomWaypoint::paper_default(field(), origin, 0.1, 13, node);
            let mut fast = RandomWaypoint::paper_default(field(), origin, 5.0, 13, node);
            let t = SimTime::from_secs_f64(500.0);
            total_slow += origin.distance(slow.position_at(t));
            total_fast += origin.distance(fast.position_at(t));
        }
        assert!(
            total_fast > total_slow,
            "fast {total_fast} <= slow {total_slow}"
        );
    }
}
