//! 2-D geometry: node positions and the deployment field.

/// A position in the 2-D deployment field, in metres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// East-west coordinate (m).
    pub x: f64,
    /// North-south coordinate (m).
    pub y: f64,
}

impl Point {
    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// The point at parameter `t ∈ [0,1]` on the segment `self → other`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

/// A rectangular deployment field `[0, width] × [0, height]` (metres).
#[derive(Clone, Copy, Debug)]
pub struct Field {
    /// Width in metres.
    pub width: f64,
    /// Height in metres.
    pub height: f64,
}

impl Field {
    /// Construct a field; both dimensions must be positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "field must have positive area");
        Field { width, height }
    }

    /// A square field of the given side.
    pub fn square(side: f64) -> Self {
        Self::new(side, side)
    }

    /// Clamp a point into the field.
    pub fn clamp(&self, p: Point) -> Point {
        Point {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }

    /// True if the point lies inside (or on the border of) the field.
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Uniformly random point inside the field.
    pub fn random_point(&self, rng: &mut jtp_sim::SimRng) -> Point {
        Point {
            x: rng.uniform(0.0, self.width),
            y: rng.uniform(0.0, self.height),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtp_sim::SimRng;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 7.0);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert!((m.x - 5.0).abs() < 1e-12 && (m.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn field_clamp_and_contains() {
        let f = Field::square(100.0);
        assert!(f.contains(Point::new(50.0, 50.0)));
        assert!(!f.contains(Point::new(-1.0, 50.0)));
        let c = f.clamp(Point::new(150.0, -20.0));
        assert_eq!(c, Point::new(100.0, 0.0));
    }

    #[test]
    fn random_points_inside() {
        let f = Field::new(30.0, 60.0);
        let mut rng = SimRng::new(1);
        for _ in 0..500 {
            assert!(f.contains(f.random_point(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn zero_field_rejected() {
        Field::new(0.0, 10.0);
    }
}
