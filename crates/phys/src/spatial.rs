//! Uniform spatial hash over node positions.
//!
//! Per-tick neighbour discovery used to be an all-pairs scan: O(n²)
//! distance computations on **every** mobility tick, which is the last
//! quadratic wall on mobile 100+-node runs. A [`SpatialGrid`] buckets the
//! positions into square cells whose side is the radio range, so every
//! pair closer than the range lands in the same or an adjacent cell —
//! candidate pairs are found in O(n·k) where k is the local density, and
//! the caller applies its own (exact, unchanged) range predicate to each
//! candidate.
//!
//! The grid is a pure *candidate filter*: it may propose pairs that are
//! out of range (corner-of-cell geometry), never miss a pair that is in
//! range (`|Δx| < cell` and `|Δy| < cell` put the endpoints in adjacent
//! columns/rows), and it proposes each unordered pair exactly once. The
//! in-range decision stays with the caller's float predicate, so a
//! grid-backed adjacency is **bit-identical** to the brute-force scan —
//! the equivalence discipline every fast path in this workspace follows.

use crate::geom::Point;

/// A uniform grid (spatial hash) over a set of 2-D positions.
///
/// Build one per query batch with [`SpatialGrid::build`]; enumerate
/// candidate pairs with [`SpatialGrid::for_each_candidate_pair`]. Cells
/// are `cell × cell` metres, anchored at the minimum coordinate of the
/// positions, so negative coordinates need no special casing.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    cell: f64,
    inv_cell: f64,
    cols: usize,
    rows: usize,
    min_x: f64,
    min_y: f64,
    /// CSR layout: cell `c` holds `items[starts[c]..starts[c + 1]]` —
    /// a counting sort over cells, two flat allocations total (the grid
    /// is rebuilt every mobility tick, so per-cell `Vec`s would put n
    /// allocations on the per-tick path). Within a cell, node indices
    /// ascend (insertion follows the caller's position order).
    starts: Vec<u32>,
    items: Vec<u32>,
    /// Counting-sort fill cursors, kept between [`SpatialGrid::rebuild`]
    /// calls purely so the per-tick path allocates nothing once the
    /// buffers have grown to the field's working size.
    cursor: Vec<u32>,
}

impl SpatialGrid {
    /// Bucket `positions` into cells of side `cell` (metres, must be
    /// positive). Pass the radio's maximum range **times a hair of
    /// slack** (e.g. `range * (1.0 + 1e-9)`) for neighbour discovery:
    /// the slack dominates every float-rounding term in the cell
    /// indexing, so two points strictly closer than `range` provably
    /// land in the same or adjacent cells.
    pub fn build(positions: &[Point], cell: f64) -> Self {
        let mut grid = SpatialGrid {
            cell,
            inv_cell: 1.0 / cell,
            cols: 0,
            rows: 0,
            min_x: 0.0,
            min_y: 0.0,
            starts: Vec::new(),
            items: Vec::new(),
            cursor: Vec::new(),
        };
        grid.rebuild(positions, cell);
        grid
    }

    /// Re-bucket `positions` in place — the same grid state
    /// [`SpatialGrid::build`] produces, but reusing the CSR buffers, so a
    /// steady-state mobility tick performs **zero** allocations once the
    /// buffers have grown to the field's working size. The candidate-pair
    /// set (and its enumeration order) is identical to a fresh build.
    pub fn rebuild(&mut self, positions: &[Point], cell: f64) {
        assert!(cell > 0.0, "cell size must be positive");
        self.cell = cell;
        self.inv_cell = 1.0 / cell;
        let inv_cell = self.inv_cell;
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if positions.is_empty() {
            self.cols = 0;
            self.rows = 0;
            self.min_x = 0.0;
            self.min_y = 0.0;
            self.starts.clear();
            self.starts.push(0);
            self.items.clear();
            return;
        }
        let cols = ((max_x - min_x) * inv_cell) as usize + 1;
        let rows = ((max_y - min_y) * inv_cell) as usize + 1;
        self.cols = cols;
        self.rows = rows;
        self.min_x = min_x;
        self.min_y = min_y;
        let cell_of = |p: &Point| {
            let cx = (((p.x - min_x) * inv_cell) as usize).min(cols - 1);
            let cy = (((p.y - min_y) * inv_cell) as usize).min(rows - 1);
            cy * cols + cx
        };
        // Counting sort: sizes, prefix sums, then a stable fill (so
        // within-cell order is the caller's position order).
        self.starts.clear();
        self.starts.resize(cols * rows + 1, 0);
        for p in positions {
            self.starts[cell_of(p) + 1] += 1;
        }
        for c in 1..self.starts.len() {
            self.starts[c] += self.starts[c - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts);
        self.items.clear();
        self.items.resize(positions.len(), 0);
        for (i, p) in positions.iter().enumerate() {
            let c = cell_of(p);
            self.items[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
    }

    /// The node indices bucketed into cell `c` (row-major index).
    fn cell_items(&self, c: usize) -> &[u32] {
        &self.items[self.starts[c] as usize..self.starts[c + 1] as usize]
    }

    /// The cell side (metres).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Visit every unordered candidate pair `(i, j)` with `i < j` whose
    /// positions lie in the same or adjacent cells — a superset of every
    /// pair closer than the cell size, each pair proposed exactly once.
    ///
    /// Enumeration order is deterministic (cells row-major; within-cell
    /// pairs first, then the four forward neighbour cells E, SW, S, SE),
    /// but callers must not rely on it: the contract is the *set* of
    /// candidates.
    pub fn for_each_candidate_pair(&self, mut f: impl FnMut(u32, u32)) {
        let mut emit = |a: u32, b: u32| {
            if a < b {
                f(a, b)
            } else {
                f(b, a)
            }
        };
        for cy in 0..self.rows {
            for cx in 0..self.cols {
                let here = self.cell_items(cy * self.cols + cx);
                if here.is_empty() {
                    continue;
                }
                // Within-cell pairs.
                for (k, &a) in here.iter().enumerate() {
                    for &b in &here[k + 1..] {
                        emit(a, b);
                    }
                }
                // Forward half of the 8-neighbourhood (E, SW, S, SE): each
                // adjacent cell pair is visited from exactly one side.
                let fwd: [(isize, isize); 4] = [(1, 0), (-1, 1), (0, 1), (1, 1)];
                for (dx, dy) in fwd {
                    let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                    if nx < 0 || ny < 0 || nx as usize >= self.cols || ny as usize >= self.rows {
                        continue;
                    }
                    let there = self.cell_items(ny as usize * self.cols + nx as usize);
                    for &a in here {
                        for &b in there {
                            emit(a, b);
                        }
                    }
                }
            }
        }
    }

    /// The cell coordinates a point would land in (diagnostic).
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        assert!(self.cols > 0 && self.rows > 0, "empty grid has no cells");
        let cx = (((p.x - self.min_x) * self.inv_cell) as usize).min(self.cols - 1);
        let cy = (((p.y - self.min_y) * self.inv_cell) as usize).min(self.rows - 1);
        (cx, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtp_sim::SimRng;
    use std::collections::HashSet;

    fn pairs_of(grid: &SpatialGrid) -> HashSet<(u32, u32)> {
        let mut out = HashSet::new();
        grid.for_each_candidate_pair(|a, b| {
            assert!(a < b, "pairs must be ordered");
            assert!(out.insert((a, b)), "pair ({a},{b}) proposed twice");
        });
        out
    }

    #[test]
    fn candidates_cover_every_in_range_pair() {
        let mut rng = SimRng::derive(7, "spatial-grid-test");
        for trial in 0..20 {
            let n = 40 + trial;
            let side = 300.0 + trial as f64 * 17.0;
            let range = 60.0 + (trial % 5) as f64 * 20.0;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
                .collect();
            let grid = SpatialGrid::build(&pts, range);
            let cand = pairs_of(&grid);
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    let d = pts[i as usize].distance(pts[j as usize]);
                    if d < range {
                        assert!(
                            cand.contains(&(i, j)),
                            "in-range pair ({i},{j}) at {d} m missed (range {range})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_are_local() {
        // Two far-apart clumps: no cross-clump candidates.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(Point::new(i as f64, 0.0));
            pts.push(Point::new(1000.0 + i as f64, 0.0));
        }
        let grid = SpatialGrid::build(&pts, 100.0);
        grid.for_each_candidate_pair(|a, b| {
            let left = |i: u32| pts[i as usize].x < 500.0;
            assert_eq!(left(a), left(b), "cross-clump candidate ({a},{b})");
        });
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let pts = vec![
            Point::new(-250.0, -90.0),
            Point::new(-200.0, -90.0),
            Point::new(130.0, 40.0),
        ];
        let grid = SpatialGrid::build(&pts, 100.0);
        let cand = pairs_of(&grid);
        assert!(cand.contains(&(0, 1)), "50 m pair must be a candidate");
        assert!(!cand.contains(&(0, 2)), "380+ m pair is never a candidate");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = SpatialGrid::build(&[], 50.0);
        empty.for_each_candidate_pair(|_, _| panic!("no pairs in an empty grid"));
        let one = SpatialGrid::build(&[Point::new(3.0, 4.0)], 50.0);
        one.for_each_candidate_pair(|_, _| panic!("no pairs for one node"));
        assert_eq!(one.dims(), (1, 1));
        assert_eq!(one.cell_of(Point::new(3.0, 4.0)), (0, 0));
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_rejected() {
        SpatialGrid::build(&[Point::new(0.0, 0.0)], 0.0);
    }
}
