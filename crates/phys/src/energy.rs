//! Radio energy accounting.
//!
//! §6.1 of the paper: *"a monitor is placed in the link layer that computes
//! the energy spent for the transmission of each transport-layer packet
//! based on the transmission power, the radio's datarate and the packet's
//! length"*. We reproduce exactly that monitor: every MAC transmission
//! attempt charges `P_tx · L / R` joules to the transmitting node (and
//! optionally `P_rx · L / R` to the receiver — the JAVeLEN TDMA keeps radios
//! off except in scheduled slots, so reception cost is attributable
//! per-packet too).
//!
//! Consistent with the paper, *"we will not consider the energy consumed for
//! network maintenance by the lower layers"* — routing/MAC control overhead
//! is not charged.

use jtp_sim::SimDuration;

/// Radio parameters used to convert packet lengths into joules.
///
/// Each transmission (or reception) costs a **fixed overhead** — radio
/// wake-up, synchronisation, preamble — plus airtime proportional to the
/// packet length. The overhead term is what makes small acknowledgment
/// packets "consume roughly as much energy as a data transmission" (§2 of
/// the paper), and is the physical reason JTP's feedback minimisation
/// matters.
#[derive(Clone, Copy, Debug)]
pub struct RadioEnergyModel {
    /// Transmit power draw in watts.
    pub tx_power_w: f64,
    /// Receive power draw in watts.
    pub rx_power_w: f64,
    /// Radio data-rate in bits/second.
    pub datarate_bps: f64,
    /// Fixed per-transmission on-time (s): wake-up + preamble + sync.
    pub overhead_s: f64,
}

impl RadioEnergyModel {
    /// Ultra-low-power JAVeLEN-like defaults: 10 mW transmit, 5 mW
    /// receive, 500 kbps, 12 ms fixed overhead. An 828-byte JTP data
    /// packet then costs ~0.25 mJ per attempt (radio on for ~one TDMA
    /// slot); a 200-byte ACK costs ~60 % of that — "roughly as much
    /// energy as a data transmission", per the paper.
    pub fn javelen_default() -> Self {
        RadioEnergyModel {
            tx_power_w: 0.010,
            rx_power_w: 0.005,
            datarate_bps: 500_000.0,
            overhead_s: 0.012,
        }
    }

    /// Airtime of a packet of `bytes` length (excluding overhead).
    pub fn airtime(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64((bytes as f64 * 8.0) / self.datarate_bps)
    }

    /// Radio on-time to move `bytes` once: overhead plus airtime.
    pub fn on_time_s(&self, bytes: usize) -> f64 {
        self.overhead_s + (bytes as f64 * 8.0) / self.datarate_bps
    }

    /// Energy (J) to transmit `bytes` once.
    pub fn tx_energy_j(&self, bytes: usize) -> f64 {
        self.tx_power_w * self.on_time_s(bytes)
    }

    /// Energy (J) to receive `bytes` once.
    pub fn rx_energy_j(&self, bytes: usize) -> f64 {
        self.rx_power_w * self.on_time_s(bytes)
    }
}

/// Finite energy budget of a node.
///
/// The paper's energy monitor only *tallies* joules; a `BatteryConfig`
/// closes the loop: the tallied charges (plus a baseline idle/sleep draw,
/// charged once per TDMA frame at the node's owned slot) drain a finite
/// reservoir, and a node whose reservoir empties **dies** — its links
/// vanish and the network's lifetime clock has its first datapoint.
#[derive(Clone, Copy, Debug)]
pub struct BatteryConfig {
    /// Usable capacity in joules.
    pub capacity_j: f64,
    /// Baseline draw while awake (listening between owned slots), watts.
    /// Charged as `idle_draw_w × frame_duration` at each owned slot.
    pub idle_draw_w: f64,
    /// Baseline draw during duty-cycled sleep frames, watts (the radio is
    /// off except for the node's own slot).
    pub sleep_draw_w: f64,
    /// Residual fraction below which the node advertises itself as
    /// low-power (energy-aware routing steers around such nodes).
    pub low_threshold: f64,
}

impl BatteryConfig {
    /// A small JAVeLEN-class battery: 0.6 J usable, 1 mW awake draw,
    /// 0.1 mW sleep draw, low-power below 25 % residual. Idle lifetime is
    /// ~10 simulated minutes, so lifetime experiments finish inside the
    /// usual run horizons; real deployments would scale `capacity_j` up.
    pub fn javelen_small() -> Self {
        BatteryConfig {
            capacity_j: 0.6,
            idle_draw_w: 1.0e-3,
            sleep_draw_w: 1.0e-4,
            low_threshold: 0.25,
        }
    }

    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_j <= 0.0 || !self.capacity_j.is_finite() {
            return Err("battery capacity must be positive".into());
        }
        if self.idle_draw_w < 0.0 || self.sleep_draw_w < 0.0 {
            return Err("battery draws must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.low_threshold) {
            return Err("battery low threshold must be in [0,1]".into());
        }
        Ok(())
    }
}

/// One node's reservoir state. Drain order is the caller's contract: two
/// runs applying the same charges in the same order read byte-identical
/// residuals (the engine-equivalence proofs rely on this, so the struct
/// stores the *accumulated drain* and never re-derives it).
#[derive(Clone, Debug)]
pub struct Battery {
    capacity_j: f64,
    drained_j: f64,
}

impl Battery {
    /// A full battery of the given capacity.
    pub fn new(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "battery capacity must be positive");
        Battery {
            capacity_j,
            drained_j: 0.0,
        }
    }

    /// Drain `joules`; returns `true` when this drain *newly* depleted the
    /// battery (exactly once per battery lifetime).
    pub fn drain(&mut self, joules: f64) -> bool {
        debug_assert!(joules >= 0.0, "cannot drain negative energy");
        let was = self.is_depleted();
        self.drained_j += joules;
        !was && self.is_depleted()
    }

    /// True once cumulative drain has reached capacity.
    pub fn is_depleted(&self) -> bool {
        self.drained_j >= self.capacity_j
    }

    /// Remaining joules (clamped at zero).
    pub fn residual_j(&self) -> f64 {
        (self.capacity_j - self.drained_j).max(0.0)
    }

    /// Remaining fraction of capacity in [0, 1].
    pub fn residual_frac(&self) -> f64 {
        self.residual_j() / self.capacity_j
    }

    /// True when the residual fraction is below `threshold`.
    pub fn is_low(&self, threshold: f64) -> bool {
        self.residual_frac() < threshold
    }

    /// Usable capacity (J).
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Cumulative drain (J) — exposed so death-time *prediction* can
    /// replay the exact `drained_j += charge` float sequence the real
    /// drains will execute (closed forms would round differently).
    pub fn drained_j(&self) -> f64 {
        self.drained_j
    }
}

/// What a given expenditure was for — lets the harness split energy between
/// data transmissions, feedback/ACK traffic and receive cost, as the paper's
/// discussion of "acknowledgments … consume roughly as much energy as a data
/// transmission" requires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EnergyCategory {
    /// Transmitting a data packet (including MAC retransmissions).
    DataTx,
    /// Transmitting a feedback/ACK packet.
    AckTx,
    /// Receiving a data packet.
    DataRx,
    /// Receiving a feedback/ACK packet.
    AckRx,
}

/// Per-node energy accumulator.
#[derive(Clone, Debug, Default)]
pub struct EnergyMeter {
    data_tx_j: f64,
    ack_tx_j: f64,
    data_rx_j: f64,
    ack_rx_j: f64,
}

impl EnergyMeter {
    /// Fresh meter with zero consumption.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `joules` to the given category.
    pub fn charge(&mut self, category: EnergyCategory, joules: f64) {
        debug_assert!(joules >= 0.0, "cannot charge negative energy");
        match category {
            EnergyCategory::DataTx => self.data_tx_j += joules,
            EnergyCategory::AckTx => self.ack_tx_j += joules,
            EnergyCategory::DataRx => self.data_rx_j += joules,
            EnergyCategory::AckRx => self.ack_rx_j += joules,
        }
    }

    /// Total joules across all categories.
    pub fn total_j(&self) -> f64 {
        self.data_tx_j + self.ack_tx_j + self.data_rx_j + self.ack_rx_j
    }

    /// Joules spent transmitting (data + ACK).
    pub fn tx_j(&self) -> f64 {
        self.data_tx_j + self.ack_tx_j
    }

    /// Joules spent on feedback/ACK traffic (tx + rx).
    pub fn ack_j(&self) -> f64 {
        self.ack_tx_j + self.ack_rx_j
    }

    /// Joules for a single category.
    pub fn category_j(&self, category: EnergyCategory) -> f64 {
        match category {
            EnergyCategory::DataTx => self.data_tx_j,
            EnergyCategory::AckTx => self.ack_tx_j,
            EnergyCategory::DataRx => self.data_rx_j,
            EnergyCategory::AckRx => self.ack_rx_j,
        }
    }

    /// Merge another meter into this one (used to aggregate system-wide
    /// totals from per-node meters).
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.data_tx_j += other.data_tx_j;
        self.ack_tx_j += other.ack_tx_j;
        self.data_rx_j += other.data_rx_j;
        self.ack_rx_j += other.ack_rx_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_energy_formula() {
        let m = RadioEnergyModel::javelen_default();
        // 800 B = 6400 bits at 500 kbps = 12.8 ms airtime; + 12 ms
        // overhead = 24.8 ms on-time at 10 mW = 0.248 mJ.
        let e = m.tx_energy_j(800);
        assert!((e - 0.248e-3).abs() < 1e-12, "e = {e}");
        assert!((m.airtime(800).as_secs_f64() - 0.0128).abs() < 1e-9);
    }

    #[test]
    fn rx_cheaper_than_tx() {
        let m = RadioEnergyModel::javelen_default();
        assert!(m.rx_energy_j(800) < m.tx_energy_j(800));
    }

    #[test]
    fn small_acks_cost_comparable_energy_to_data() {
        // The §2 observation that motivates minimising acknowledgments.
        let m = RadioEnergyModel::javelen_default();
        let ratio = m.tx_energy_j(52) / m.tx_energy_j(828);
        assert!(
            ratio > 0.4,
            "52-B ACK should cost >40% of a data packet, got {ratio}"
        );
    }

    #[test]
    fn airtime_scales_linearly_with_length() {
        let m = RadioEnergyModel::javelen_default();
        let marginal = m.tx_energy_j(1600) - m.tx_energy_j(800);
        let marginal2 = m.tx_energy_j(2400) - m.tx_energy_j(1600);
        assert!((marginal - marginal2).abs() < 1e-15);
    }

    #[test]
    fn meter_accumulates_by_category() {
        let mut meter = EnergyMeter::new();
        meter.charge(EnergyCategory::DataTx, 1.0);
        meter.charge(EnergyCategory::DataTx, 2.0);
        meter.charge(EnergyCategory::AckTx, 0.5);
        meter.charge(EnergyCategory::DataRx, 0.25);
        meter.charge(EnergyCategory::AckRx, 0.125);
        assert_eq!(meter.category_j(EnergyCategory::DataTx), 3.0);
        assert_eq!(meter.tx_j(), 3.5);
        assert_eq!(meter.ack_j(), 0.625);
        assert_eq!(meter.total_j(), 3.875);
    }

    #[test]
    fn battery_drains_and_depletes_once() {
        let mut b = Battery::new(1.0);
        assert!(!b.drain(0.4));
        assert!((b.residual_j() - 0.6).abs() < 1e-12);
        assert!(!b.is_depleted());
        assert!(b.drain(0.6), "crossing zero must report newly depleted");
        assert!(b.is_depleted());
        assert!(!b.drain(0.1), "already depleted: no second death report");
        assert_eq!(b.residual_j(), 0.0, "residual clamps at zero");
        assert_eq!(b.residual_frac(), 0.0);
    }

    #[test]
    fn battery_low_threshold() {
        let mut b = Battery::new(2.0);
        assert!(!b.is_low(0.25));
        b.drain(1.6);
        assert!(b.is_low(0.25), "20% residual is below the 25% threshold");
        assert!(!b.is_low(0.1));
    }

    #[test]
    fn battery_config_validation() {
        BatteryConfig::javelen_small().validate().unwrap();
        let mut bad = BatteryConfig::javelen_small();
        bad.capacity_j = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = BatteryConfig::javelen_small();
        bad.idle_draw_w = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = BatteryConfig::javelen_small();
        bad.low_threshold = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn drain_accumulation_is_order_exact() {
        // The equivalence proofs need per-slot drains to reproduce the
        // same float sequence everywhere; drained_j() exposes the raw
        // accumulator for predictions to replay.
        let mut b = Battery::new(1.0);
        let step = 0.1;
        let mut predicted = 0.0f64;
        for _ in 0..7 {
            predicted += step;
            b.drain(step);
            assert_eq!(b.drained_j().to_bits(), predicted.to_bits());
        }
    }

    #[test]
    fn meters_merge() {
        let mut a = EnergyMeter::new();
        a.charge(EnergyCategory::DataTx, 1.0);
        let mut b = EnergyMeter::new();
        b.charge(EnergyCategory::AckRx, 2.0);
        a.merge(&b);
        assert_eq!(a.total_j(), 3.0);
    }
}
