//! Typed event vocabulary and zero-cost subscriber layer.
//!
//! Every observable thing the engine does — a slot firing, a packet
//! delivered or dropped, a routing flood, a battery death — is described
//! here as a plain struct, and consumers implement [`Subscriber`] to
//! receive the ones they care about. The design rule is the one
//! s2n-quic's generated events crate uses: the subscriber is a **type
//! parameter** of the engine, so with [`NoopSubscriber`] every emission
//! site monomorphizes to nothing — no branch, no virtual call, no
//! argument construction (emission sites gate on [`Subscriber::ENABLED`],
//! a `const`, and build event payloads inside that gate).
//!
//! Determinism contract (see ARCHITECTURE.md "Event & telemetry layer"):
//!
//! * subscribers receive `&`-events and may keep any state they like,
//!   but the engine never reads that state back — a subscriber cannot
//!   influence simulation results;
//! * subscribers must not feed wall-clock (or any other host
//!   non-determinism) back into anything that is compared across runs:
//!   wall time lives in [`TimeAccountant`] and in markdown reports,
//!   never in serialized JSON that CI diffs;
//! * event streams are a pure function of the scenario, so a subscriber
//!   that folds the stream (counts, checksums, timelines) is itself
//!   deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jtp_sim::par::ParStats;
use jtp_sim::{FlowId, NodeId, SimTime};

/// Why a data packet left the network without being delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// MAC transmit queue overflow on enqueue.
    Queue,
    /// ARQ attempt budget exhausted at the MAC.
    Arq,
    /// Pre-transmit energy verdict: not worth the remaining budget.
    Energy,
    /// No route to the destination in the sender's view.
    NoRoute,
    /// Queue flushed because the node (or its origin) left the network.
    Churn,
}

impl DropCause {
    /// All causes, in a fixed order (stable across runs — report tables
    /// and histograms index by this).
    pub const ALL: [DropCause; 5] = [
        DropCause::Queue,
        DropCause::Arq,
        DropCause::Energy,
        DropCause::NoRoute,
        DropCause::Churn,
    ];

    /// Position of this cause in [`DropCause::ALL`].
    pub fn index(self) -> usize {
        match self {
            DropCause::Queue => 0,
            DropCause::Arq => 1,
            DropCause::Energy => 2,
            DropCause::NoRoute => 3,
            DropCause::Churn => 4,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Queue => "queue",
            DropCause::Arq => "arq",
            DropCause::Energy => "energy",
            DropCause::NoRoute => "no_route",
            DropCause::Churn => "churn",
        }
    }
}

/// Coarse packet class for send events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// Transport data (JTP, TCP or ATP payload).
    Data,
    /// Acknowledgement / feedback traffic.
    Ack,
}

/// What triggered a routing flood.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FloodCause {
    /// A scripted dynamics action (node/link up/down, weight change…).
    Dynamics,
    /// One or more batteries died this slot.
    BatteryDeath,
    /// An energy advert changed link weights.
    EnergyAdvert,
    /// A mobility tick moved the geometry.
    Mobility,
}

impl FloodCause {
    /// All causes, in a fixed order.
    pub const ALL: [FloodCause; 4] = [
        FloodCause::Dynamics,
        FloodCause::BatteryDeath,
        FloodCause::EnergyAdvert,
        FloodCause::Mobility,
    ];

    /// Position of this cause in [`FloodCause::ALL`].
    pub fn index(self) -> usize {
        match self {
            FloodCause::Dynamics => 0,
            FloodCause::BatteryDeath => 1,
            FloodCause::EnergyAdvert => 2,
            FloodCause::Mobility => 3,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FloodCause::Dynamics => "dynamics",
            FloodCause::BatteryDeath => "battery_death",
            FloodCause::EnergyAdvert => "energy_advert",
            FloodCause::Mobility => "mobility",
        }
    }
}

/// A TDMA slot was granted to its owner.
#[derive(Clone, Copy, Debug)]
pub struct SlotGrant {
    /// Absolute slot index.
    pub slot: u64,
    /// Slot owner.
    pub owner: NodeId,
    /// Whether the owner had a frame to transmit this slot.
    pub busy: bool,
    /// Owner's MAC queue depth when the slot fired (before transmit).
    pub queue_depth: u32,
}

/// A frame went on the air.
#[derive(Clone, Copy, Debug)]
pub struct PacketSend {
    /// Transmitting node.
    pub from: NodeId,
    /// Link-layer next hop.
    pub to: NodeId,
    /// Data or ack traffic.
    pub kind: PacketKind,
    /// Wire bytes of the frame.
    pub bytes: u32,
    /// Whether the channel delivered it this attempt.
    pub delivered: bool,
}

/// Per-packet ARQ attempt budget chosen at first transmission.
#[derive(Clone, Copy, Debug)]
pub struct AttemptBudget {
    /// Node the budget was computed at.
    pub node: NodeId,
    /// Maximum link-layer attempts granted to the head-of-line packet.
    pub budget: u32,
}

/// A transport data packet reached a destination endpoint.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Receiving node.
    pub node: NodeId,
    /// Wire bytes of the delivered packet.
    pub bytes: u32,
    /// `false` for duplicates the receiver had already seen.
    pub fresh: bool,
}

/// One or more data packets were dropped.
#[derive(Clone, Copy, Debug)]
pub struct PacketDrop {
    /// Node at which the drop happened.
    pub node: NodeId,
    /// Why.
    pub cause: DropCause,
    /// How many packets this event covers (queue flushes drop in bulk).
    pub packets: u64,
}

/// A JTP receiver's flip-flop rate monitor produced a sample.
#[derive(Clone, Copy, Debug)]
pub struct MonitorUpdate {
    /// Monitored flow.
    pub flow: FlowId,
    /// Rate reported by the sender in the delivered packet (pps).
    pub reported: f64,
    /// Monitor mean estimate.
    pub mean: f64,
    /// Lower control limit.
    pub lcl: f64,
    /// Upper control limit.
    pub ucl: f64,
}

/// A routing flood (view resynchronization) is starting.
#[derive(Clone, Copy, Debug)]
pub struct FloodStart {
    /// What triggered it.
    pub cause: FloodCause,
}

/// A routing flood finished; costs are exact engine work counts.
#[derive(Clone, Copy, Debug)]
pub struct FloodEnd {
    /// What triggered it.
    pub cause: FloodCause,
    /// Node views refreshed by this flood.
    pub views_refreshed: u64,
    /// Source rows repaired or rebuilt (hop BFS + weighted APSP).
    pub sources_repaired: u64,
    /// Distance-table entries whose value actually changed (exact
    /// per-entry dirt from the incremental engines).
    pub entries_changed: u64,
}

/// A node's battery reached zero.
#[derive(Clone, Copy, Debug)]
pub struct BatteryDeath {
    /// The node that died.
    pub node: NodeId,
    /// Nodes still alive after this death.
    pub alive: u32,
}

/// An energy advert fired (periodic energy-aware weight refresh).
#[derive(Clone, Copy, Debug)]
pub struct EnergyAdvert {
    /// Whether any link weight changed (a flood follows iff `true`).
    pub changed: bool,
}

/// A scripted dynamics action was applied to the substrate.
#[derive(Clone, Copy, Debug)]
pub struct DynamicsApplied {
    /// Index of the action in the scenario's dynamics script.
    pub index: u32,
}

/// A mobility tick moved node positions.
#[derive(Clone, Copy, Debug)]
pub struct MobilityTick {
    /// Geometry edges that appeared or disappeared this tick.
    pub changed_edges: u32,
}

/// Engine subsystems for wall-clock accounting.
///
/// The first five are **dispatch-level** buckets — every handled event
/// falls in exactly one. [`Subsystem::FloodPlane`] and
/// [`Subsystem::GeometryDiff`] are **nested** sub-spans inside whichever
/// dispatch bucket triggered them (a death flood is inside `SlotPlane`,
/// a mobility diff inside `Mobility`), so the seven do not sum to total
/// wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subsystem {
    /// TDMA slot events: transmit, receive, energy charge, deaths.
    SlotPlane,
    /// Transport timers: flow starts, sender wakeups, receiver timers.
    Timers,
    /// Scripted dynamics actions.
    Dynamics,
    /// Periodic energy adverts.
    EnergyAdvert,
    /// Mobility ticks (position updates + topology repair).
    Mobility,
    /// Routing view refresh after a substrate change (nested span).
    FloodPlane,
    /// Geometry recompute + edge diff on mobility ticks (nested span).
    GeometryDiff,
}

impl Subsystem {
    /// Number of subsystems (array sizing for accountants).
    pub const COUNT: usize = 7;

    /// All subsystems, in a fixed order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::SlotPlane,
        Subsystem::Timers,
        Subsystem::Dynamics,
        Subsystem::EnergyAdvert,
        Subsystem::Mobility,
        Subsystem::FloodPlane,
        Subsystem::GeometryDiff,
    ];

    /// Position of this subsystem in [`Subsystem::ALL`].
    pub fn index(self) -> usize {
        match self {
            Subsystem::SlotPlane => 0,
            Subsystem::Timers => 1,
            Subsystem::Dynamics => 2,
            Subsystem::EnergyAdvert => 3,
            Subsystem::Mobility => 4,
            Subsystem::FloodPlane => 5,
            Subsystem::GeometryDiff => 6,
        }
    }

    /// Stable name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::SlotPlane => "slot_plane",
            Subsystem::Timers => "timers",
            Subsystem::Dynamics => "dynamics",
            Subsystem::EnergyAdvert => "energy_advert",
            Subsystem::Mobility => "mobility",
            Subsystem::FloodPlane => "flood_plane",
            Subsystem::GeometryDiff => "geometry_diff",
        }
    }
}

/// Receives engine events. All handlers default to no-ops so a
/// subscriber implements only what it folds.
///
/// The two associated consts are the zero-cost switchboard:
///
/// * [`Subscriber::ENABLED`] gates every event emission site — the
///   engine writes `if S::ENABLED { sub.on_x(now, &X { .. }) }`, so
///   with a `false` const the whole block (including payload
///   construction) is dead code after monomorphization;
/// * [`Subscriber::TIMING`] gates the `Instant::now()` spans around
///   dispatch and the flood plane — wall-clock reads are themselves
///   not free, so they only exist for subscribers that ask.
pub trait Subscriber {
    /// Whether event emission sites are compiled in for this subscriber.
    const ENABLED: bool = true;
    /// Whether wall-clock subsystem spans are compiled in.
    const TIMING: bool = false;

    /// A TDMA slot fired.
    fn on_slot(&mut self, _now: SimTime, _ev: &SlotGrant) {}
    /// A frame was transmitted.
    fn on_send(&mut self, _now: SimTime, _ev: &PacketSend) {}
    /// An ARQ attempt budget was granted.
    fn on_attempt_budget(&mut self, _now: SimTime, _ev: &AttemptBudget) {}
    /// A data packet arrived at a destination endpoint.
    fn on_delivery(&mut self, _now: SimTime, _ev: &Delivery) {}
    /// Data packets were dropped.
    fn on_drop(&mut self, _now: SimTime, _ev: &PacketDrop) {}
    /// A receiver rate monitor produced a sample.
    fn on_monitor(&mut self, _now: SimTime, _ev: &MonitorUpdate) {}
    /// A routing flood is starting.
    fn on_flood_start(&mut self, _now: SimTime, _ev: &FloodStart) {}
    /// A routing flood finished.
    fn on_flood_end(&mut self, _now: SimTime, _ev: &FloodEnd) {}
    /// A battery died.
    fn on_battery_death(&mut self, _now: SimTime, _ev: &BatteryDeath) {}
    /// An energy advert fired.
    fn on_energy_advert(&mut self, _now: SimTime, _ev: &EnergyAdvert) {}
    /// A dynamics action was applied.
    fn on_dynamics(&mut self, _now: SimTime, _ev: &DynamicsApplied) {}
    /// A mobility tick was applied.
    fn on_mobility(&mut self, _now: SimTime, _ev: &MobilityTick) {}
    /// A wall-clock span closed (only emitted when [`Self::TIMING`]).
    fn on_subsystem_time(&mut self, _sys: Subsystem, _wall_ns: u64) {}
}

/// The disabled subscriber: every emission site compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    const ENABLED: bool = false;
    const TIMING: bool = false;
}

/// Pair composition: `(A, B)` fans every event out to both members.
/// Nest pairs to stack more — `(trace, (report, time))`.
impl<A: Subscriber, B: Subscriber> Subscriber for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    const TIMING: bool = A::TIMING || B::TIMING;

    fn on_slot(&mut self, now: SimTime, ev: &SlotGrant) {
        self.0.on_slot(now, ev);
        self.1.on_slot(now, ev);
    }
    fn on_send(&mut self, now: SimTime, ev: &PacketSend) {
        self.0.on_send(now, ev);
        self.1.on_send(now, ev);
    }
    fn on_attempt_budget(&mut self, now: SimTime, ev: &AttemptBudget) {
        self.0.on_attempt_budget(now, ev);
        self.1.on_attempt_budget(now, ev);
    }
    fn on_delivery(&mut self, now: SimTime, ev: &Delivery) {
        self.0.on_delivery(now, ev);
        self.1.on_delivery(now, ev);
    }
    fn on_drop(&mut self, now: SimTime, ev: &PacketDrop) {
        self.0.on_drop(now, ev);
        self.1.on_drop(now, ev);
    }
    fn on_monitor(&mut self, now: SimTime, ev: &MonitorUpdate) {
        self.0.on_monitor(now, ev);
        self.1.on_monitor(now, ev);
    }
    fn on_flood_start(&mut self, now: SimTime, ev: &FloodStart) {
        self.0.on_flood_start(now, ev);
        self.1.on_flood_start(now, ev);
    }
    fn on_flood_end(&mut self, now: SimTime, ev: &FloodEnd) {
        self.0.on_flood_end(now, ev);
        self.1.on_flood_end(now, ev);
    }
    fn on_battery_death(&mut self, now: SimTime, ev: &BatteryDeath) {
        self.0.on_battery_death(now, ev);
        self.1.on_battery_death(now, ev);
    }
    fn on_energy_advert(&mut self, now: SimTime, ev: &EnergyAdvert) {
        self.0.on_energy_advert(now, ev);
        self.1.on_energy_advert(now, ev);
    }
    fn on_dynamics(&mut self, now: SimTime, ev: &DynamicsApplied) {
        self.0.on_dynamics(now, ev);
        self.1.on_dynamics(now, ev);
    }
    fn on_mobility(&mut self, now: SimTime, ev: &MobilityTick) {
        self.0.on_mobility(now, ev);
        self.1.on_mobility(now, ev);
    }
    fn on_subsystem_time(&mut self, sys: Subsystem, wall_ns: u64) {
        self.0.on_subsystem_time(sys, wall_ns);
        self.1.on_subsystem_time(sys, wall_ns);
    }
}

/// Pure event counters — a cheap always-on subscriber used by tests to
/// cross-check the event stream against `Metrics`, and by reports for
/// their totals table.
#[derive(Clone, Debug, Default)]
pub struct EventCounters {
    /// Slots fired (owned slots that were processed).
    pub slots: u64,
    /// Slots whose owner transmitted a frame.
    pub busy_slots: u64,
    /// Frames put on the air.
    pub sends: u64,
    /// Frames the channel lost.
    pub send_failures: u64,
    /// Data-packet arrivals at endpoints (including duplicates).
    pub deliveries: u64,
    /// First-time data-packet arrivals.
    pub fresh_deliveries: u64,
    /// Attempt budgets granted.
    pub attempt_budgets: u64,
    /// Packets dropped, indexed by [`DropCause::index`].
    pub drops: [u64; DropCause::ALL.len()],
    /// Rate-monitor samples.
    pub monitor_samples: u64,
    /// Floods, indexed by [`FloodCause::index`].
    pub floods: [u64; FloodCause::ALL.len()],
    /// Node views refreshed across all floods.
    pub views_refreshed: u64,
    /// Source rows repaired across all floods.
    pub sources_repaired: u64,
    /// Distance entries changed across all floods.
    pub entries_changed: u64,
    /// Battery deaths.
    pub battery_deaths: u64,
    /// Energy adverts fired.
    pub energy_adverts: u64,
    /// Dynamics actions applied.
    pub dynamics_applied: u64,
    /// Mobility ticks applied.
    pub mobility_ticks: u64,
}

impl EventCounters {
    /// Total packets dropped across all causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Total floods across all causes.
    pub fn total_floods(&self) -> u64 {
        self.floods.iter().sum()
    }
}

impl Subscriber for EventCounters {
    fn on_slot(&mut self, _now: SimTime, ev: &SlotGrant) {
        self.slots += 1;
        self.busy_slots += u64::from(ev.busy);
    }
    fn on_send(&mut self, _now: SimTime, ev: &PacketSend) {
        self.sends += 1;
        self.send_failures += u64::from(!ev.delivered);
    }
    fn on_attempt_budget(&mut self, _now: SimTime, _ev: &AttemptBudget) {
        self.attempt_budgets += 1;
    }
    fn on_delivery(&mut self, _now: SimTime, ev: &Delivery) {
        self.deliveries += 1;
        self.fresh_deliveries += u64::from(ev.fresh);
    }
    fn on_drop(&mut self, _now: SimTime, ev: &PacketDrop) {
        self.drops[ev.cause.index()] += ev.packets;
    }
    fn on_monitor(&mut self, _now: SimTime, _ev: &MonitorUpdate) {
        self.monitor_samples += 1;
    }
    fn on_flood_end(&mut self, _now: SimTime, ev: &FloodEnd) {
        self.floods[ev.cause.index()] += 1;
        self.views_refreshed += ev.views_refreshed;
        self.sources_repaired += ev.sources_repaired;
        self.entries_changed += ev.entries_changed;
    }
    fn on_battery_death(&mut self, _now: SimTime, _ev: &BatteryDeath) {
        self.battery_deaths += 1;
    }
    fn on_energy_advert(&mut self, _now: SimTime, _ev: &EnergyAdvert) {
        self.energy_adverts += 1;
    }
    fn on_dynamics(&mut self, _now: SimTime, _ev: &DynamicsApplied) {
        self.dynamics_applied += 1;
    }
    fn on_mobility(&mut self, _now: SimTime, _ev: &MobilityTick) {
        self.mobility_ticks += 1;
    }
}

/// Wall-clock accounting per subsystem, plus the flood plane's
/// [`ParStats`] (filled in by the runner from the routing layer after
/// the run). Timing-only: it requests no events, so a lone
/// `TimeAccountant` keeps every emission site compiled out and only
/// pays for the dispatch spans.
///
/// Wall time is host noise — it must never flow into `Metrics`, golden
/// digests, or deterministic JSON. Reports print it in markdown only.
#[derive(Clone, Debug, Default)]
pub struct TimeAccountant {
    spans: [u64; Subsystem::COUNT],
    wall_ns: [u64; Subsystem::COUNT],
    /// Flood-plane fan-out stats (busy / critical-path nanoseconds per
    /// worker chunk), merged in by the runner.
    pub par: ParStats,
}

impl TimeAccountant {
    /// Spans recorded for a subsystem.
    pub fn spans(&self, sys: Subsystem) -> u64 {
        self.spans[sys.index()]
    }

    /// Total wall nanoseconds recorded for a subsystem.
    pub fn wall_ns(&self, sys: Subsystem) -> u64 {
        self.wall_ns[sys.index()]
    }

    /// Wall nanoseconds summed over the dispatch-level buckets (the
    /// nested [`Subsystem::FloodPlane`] / [`Subsystem::GeometryDiff`]
    /// spans are excluded to avoid double counting).
    pub fn dispatch_wall_ns(&self) -> u64 {
        Subsystem::ALL
            .iter()
            .filter(|s| !matches!(s, Subsystem::FloodPlane | Subsystem::GeometryDiff))
            .map(|&s| self.wall_ns(s))
            .sum()
    }

    /// Fold another accountant in (e.g. when merging worker runs).
    pub fn merge(&mut self, other: &TimeAccountant) {
        for i in 0..Subsystem::COUNT {
            self.spans[i] += other.spans[i];
            self.wall_ns[i] += other.wall_ns[i];
        }
        self.par.merge(other.par);
    }
}

impl Subscriber for TimeAccountant {
    const ENABLED: bool = false;
    const TIMING: bool = true;

    fn on_subsystem_time(&mut self, sys: Subsystem, wall_ns: u64) {
        self.spans[sys.index()] += 1;
        self.wall_ns[sys.index()] += wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_match_all_order() {
        for (i, c) in DropCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, c) in FloodCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    // The point of this test IS the constant values: it pins the const
    // wiring that makes the disabled path compile to nothing.
    #[allow(clippy::assertions_on_constants)]
    fn noop_is_disabled_and_pairs_or_the_consts() {
        assert!(!NoopSubscriber::ENABLED);
        assert!(!NoopSubscriber::TIMING);
        assert!(!<(NoopSubscriber, NoopSubscriber)>::ENABLED);
        assert!(<(EventCounters, NoopSubscriber)>::ENABLED);
        assert!(!<(EventCounters, NoopSubscriber)>::TIMING);
        assert!(<(EventCounters, TimeAccountant)>::TIMING);
        // TimeAccountant alone asks for spans but no events.
        assert!(!TimeAccountant::ENABLED);
        assert!(TimeAccountant::TIMING);
    }

    #[test]
    fn pair_fans_out_to_both_members() {
        let mut pair = (EventCounters::default(), EventCounters::default());
        let now = SimTime::ZERO;
        pair.on_slot(
            now,
            &SlotGrant {
                slot: 3,
                owner: NodeId(1),
                busy: true,
                queue_depth: 2,
            },
        );
        pair.on_drop(
            now,
            &PacketDrop {
                node: NodeId(1),
                cause: DropCause::Churn,
                packets: 4,
            },
        );
        for c in [&pair.0, &pair.1] {
            assert_eq!(c.slots, 1);
            assert_eq!(c.busy_slots, 1);
            assert_eq!(c.drops[DropCause::Churn.index()], 4);
            assert_eq!(c.total_drops(), 4);
        }
    }

    #[test]
    fn time_accountant_accumulates_and_merges() {
        let mut t = TimeAccountant::default();
        t.on_subsystem_time(Subsystem::SlotPlane, 100);
        t.on_subsystem_time(Subsystem::SlotPlane, 50);
        t.on_subsystem_time(Subsystem::FloodPlane, 700);
        assert_eq!(t.spans(Subsystem::SlotPlane), 2);
        assert_eq!(t.wall_ns(Subsystem::SlotPlane), 150);
        // Nested spans are excluded from the dispatch total.
        assert_eq!(t.dispatch_wall_ns(), 150);
        let mut u = TimeAccountant::default();
        u.on_subsystem_time(Subsystem::Timers, 25);
        u.merge(&t);
        assert_eq!(u.wall_ns(Subsystem::Timers), 25);
        assert_eq!(u.wall_ns(Subsystem::FloodPlane), 700);
        assert_eq!(u.dispatch_wall_ns(), 175);
    }
}
