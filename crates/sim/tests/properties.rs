//! Property-based tests of the discrete-event engine.

use jtp_sim::stats::{ci95_halfwidth, Ewma, MeanRange, Welford};
use jtp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Executable specification of the queue semantics the seed engine had:
/// a totally ordered map keyed by `(time, class, seq)` with exact
/// cancellation. The slab/heap implementation must be observationally
/// identical to this model.
#[derive(Default)]
struct ModelQueue {
    entries: BTreeMap<(u64, u8, u64), usize>,
    next_seq: u64,
    now: u64,
}

impl ModelQueue {
    /// Returns a model handle (the internal key).
    fn schedule(&mut self, at: u64, class: u8, tag: usize) -> (u64, u8, u64) {
        assert!(at >= self.now);
        let key = (at, class, self.next_seq);
        self.next_seq += 1;
        self.entries.insert(key, tag);
        key
    }

    fn cancel(&mut self, key: (u64, u8, u64)) -> bool {
        self.entries.remove(&key).is_some()
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let (&key, &tag) = self.entries.iter().next()?;
        self.entries.remove(&key);
        self.now = key.0;
        Some((key.0, tag))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always pop in nondecreasing time order with FIFO ties.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO tie-break violated");
                }
            }
            prop_assert_eq!(t, SimTime::from_micros(times[idx]));
            last = Some((t, idx));
        }
        prop_assert_eq!(q.len(), 0);
    }

    /// The slab/heap queue is observationally identical to the ordered-map
    /// model under arbitrary interleavings of schedule / cancel / pop,
    /// including event classes: same delivery times, same payloads, same
    /// clock, same cancel return values.
    #[test]
    fn queue_matches_reference_model(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..5000, any::<bool>()),
            1..400,
        ),
    ) {
        let mut q = EventQueue::new();
        let mut model = ModelQueue::default();
        // Parallel vectors of live handles (same insertion order).
        let mut q_ids = Vec::new();
        let mut m_keys = Vec::new();
        let mut tag = 0usize;
        for (op, t, flag) in ops {
            match op {
                // schedule at now + offset, class from `flag`
                0..=3 => {
                    let class = if flag { 0 } else { 128 };
                    let at = model.now + t;
                    let sim_at = SimTime::from_micros(at);
                    q_ids.push(q.schedule_at_class(sim_at, class, tag));
                    m_keys.push(model.schedule(at, class, tag));
                    tag += 1;
                }
                // cancel a pseudo-random previously issued handle
                4..=5 if !q_ids.is_empty() => {
                    let pick = (t as usize) % q_ids.len();
                    let a = q.cancel(q_ids[pick]);
                    let b = model.cancel(m_keys[pick]);
                    prop_assert_eq!(a, b, "cancel outcome diverged");
                }
                // pop
                _ => {
                    let got = q.pop();
                    let want = model.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some((qt, qtag)), Some((mt, mtag))) => {
                            prop_assert_eq!(qt, SimTime::from_micros(mt));
                            prop_assert_eq!(qtag, mtag, "payload order diverged");
                            prop_assert_eq!(q.now(), SimTime::from_micros(model.now));
                        }
                        (g, w) => prop_assert!(false, "pop diverged: {:?} vs {:?}", g.map(|x| x.1), w.map(|x| x.1)),
                    }
                    prop_assert_eq!(q.peek_time(), model.entries.keys().next().map(|k| SimTime::from_micros(k.0)));
                }
            }
        }
        // Drain both and compare the tail.
        loop {
            let got = q.pop();
            let want = model.pop();
            prop_assert_eq!(got.map(|(t, e)| (t.as_micros(), e)), want);
            if want.is_none() {
                break;
            }
        }
    }

    /// Cancelled events are never delivered; everything else is.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_micros(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                cancelled.insert(i);
            }
        }
        let mut delivered = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            delivered.insert(i);
        }
        for i in 0..times.len() {
            prop_assert_eq!(delivered.contains(&i), !cancelled.contains(&i));
        }
    }

    /// Derived RNG substreams are reproducible and label-distinct.
    #[test]
    fn rng_substreams(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = SimRng::derive(seed, &label);
        let mut b = SimRng::derive(seed, &label);
        for _ in 0..16 {
            prop_assert_eq!(a.u64(), b.u64());
        }
        let mut c = SimRng::derive(seed, &format!("{label}x"));
        let mut a2 = SimRng::derive(seed, &label);
        let same = (0..16).filter(|_| a2.u64() == c.u64()).count();
        prop_assert!(same < 16, "distinct labels produced identical streams");
    }

    /// EWMA output always lies within the observed sample range.
    #[test]
    fn ewma_bounded_by_samples(
        alpha in 0.01f64..1.0,
        samples in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut e = Ewma::new(alpha);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &s in &samples {
            lo = lo.min(s);
            hi = hi.max(s);
            let v = e.update(s);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9,
                "EWMA {} escaped [{}, {}]", v, lo, hi);
        }
    }

    /// Control limits always bracket the mean and widen with range weight.
    #[test]
    fn control_limits_bracket(
        samples in proptest::collection::vec(0.0f64..1e3, 2..100),
    ) {
        let mut mr = MeanRange::new(0.2, 0.2);
        for &s in &samples {
            mr.update(s);
            let (m, u, l) = (mr.mean().unwrap(), mr.ucl().unwrap(), mr.lcl().unwrap());
            prop_assert!(l <= m && m <= u);
        }
    }

    /// Welford matches the two-pass mean to floating-point accuracy.
    #[test]
    fn welford_matches_two_pass(samples in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut w = Welford::new();
        for &s in &samples {
            w.push(s);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6);
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64;
        prop_assert!((w.variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    /// CI half-width is nonnegative and zero for constant data.
    #[test]
    fn ci_nonnegative(samples in proptest::collection::vec(-100.0f64..100.0, 0..50)) {
        prop_assert!(ci95_halfwidth(&samples) >= 0.0);
    }

    /// Exponential sampling is positive with roughly the right mean.
    #[test]
    fn exponential_positive(seed in any::<u64>(), mean in 0.1f64..100.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let x = rng.exponential(mean);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// Duration arithmetic is consistent.
    #[test]
    fn time_arithmetic(a in 0u64..1u64 << 40, b in 0u64..1u64 << 20) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).since(t), d);
        prop_assert_eq!(t.since(t + d), SimDuration::ZERO);
    }
}
