//! Shared identifier newtypes.
//!
//! Defined here (the crate everything depends on) so that the MAC, routing,
//! transport and assembly crates agree on node/flow identity without
//! depending on each other.

use std::fmt;

/// Identifies a node in the network. Dense small integers — usable as a
/// `Vec` index via [`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a transport connection (flow) end-to-end.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u16);

impl FlowId {
    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(FlowId(7).to_string(), "f7");
        assert_eq!(FlowId(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        assert_eq!(s.len(), 1);
        assert!(NodeId(1) < NodeId(2));
    }
}
