//! Deterministic fork-join fan-out over contiguous index chunks.
//!
//! The engine's parallelism-within-a-run rides on one primitive: split
//! `0..n` into at most `workers` contiguous ranges, run a pure function
//! per range on scoped worker threads, and hand the per-chunk results
//! back **in chunk order** so the caller's merge is byte-identical to
//! the sequential loop it replaced. Workers never share mutable state
//! and never consume RNG — determinism is by construction, not by
//! locking (see the determinism checklist in ARCHITECTURE.md).
//!
//! Each chunk's busy time is measured so callers can report the
//! *critical path* of a fan-out: on a machine with fewer cores than
//! workers the measured wall clock is serialisation noise, while
//! `Σ busy / Σ per-fan-out max` is the speedup the fan-out makes
//! attainable — [`ParStats`] accumulates both sides.

use std::ops::Range;
use std::time::Instant;

/// Split `0..n` into at most `workers` contiguous, non-empty ranges of
/// near-equal length (the first `n % workers` chunks take one extra
/// element). `workers` is clamped to `[1, n]`; `n == 0` yields no
/// ranges. The split is a pure function of `(n, workers)` — partition
/// layouts never depend on load or timing.
pub fn chunk_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let w = workers.clamp(1, n);
    let base = n / w;
    let extra = n % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `f(chunk_index, range)` over the chunks of `0..n` on scoped
/// threads and return `(result, busy_ns)` per chunk **in chunk order**.
/// With one chunk (or `workers <= 1`) the call runs inline on the
/// caller's thread — no spawn, same results.
///
/// `f` must be a pure function of its range (plus shared `&` state):
/// chunk results are merged in index order, so output equals the
/// sequential `for i in 0..n` loop whatever the thread interleaving.
pub fn run_chunked<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize, Range<usize>) -> T + Sync,
) -> Vec<(T, u64)> {
    let ranges = chunk_ranges(n, workers);
    let timed = |i: usize, r: Range<usize>| {
        let t0 = Instant::now();
        let out = f(i, r);
        (out, t0.elapsed().as_nanos() as u64)
    };
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| timed(i, r))
            .collect();
    }
    let mut slots: Vec<Option<(T, u64)>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, (slot, range)) in slots.iter_mut().zip(ranges).enumerate() {
            let timed = &timed;
            scope.spawn(move || *slot = Some(timed(i, range)));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("scoped worker always completes"))
        .collect()
}

/// Like [`run_chunked`], but each chunk additionally receives the
/// matching contiguous `&mut` sub-slice of `items` (chunked by the same
/// `chunk_ranges(items.len(), workers)` split) — the in-place variant
/// for callers that repair rows rather than rebuild them. Results come
/// back in chunk order; the range passed to `f` is the chunk's global
/// index range, so `items_chunk[j]` is item `range.start + j`.
pub fn run_chunked_mut<I: Send, T: Send>(
    items: &mut [I],
    workers: usize,
    f: impl Fn(usize, Range<usize>, &mut [I]) -> T + Sync,
) -> Vec<(T, u64)> {
    let ranges = chunk_ranges(items.len(), workers);
    let timed = |i: usize, r: Range<usize>, chunk: &mut [I]| {
        let t0 = Instant::now();
        let out = f(i, r, chunk);
        (out, t0.elapsed().as_nanos() as u64)
    };
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| timed(i, r, items))
            .collect();
    }
    let mut slots: Vec<Option<(T, u64)>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest = items;
        for (i, (slot, range)) in slots.iter_mut().zip(&ranges).enumerate() {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let timed = &timed;
            let range = range.clone();
            scope.spawn(move || *slot = Some(timed(i, range, chunk)));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("scoped worker always completes"))
        .collect()
}

/// Wall-clock accounting for fan-outs, kept **outside** simulation
/// results (never folded into `Metrics` — wall time is host noise, and
/// results must stay byte-identical across worker counts and hosts).
///
/// `busy_ns` sums every chunk's busy time (the work that exists);
/// `critical_ns` sums each fan-out's *slowest* chunk (the work that
/// cannot be hidden by more cores). Their ratio is the speedup bound
/// the partitioning achieves with at least as many cores as workers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParStats {
    /// Fan-outs performed (barriers crossed).
    pub fanouts: u64,
    /// Total busy nanoseconds across all chunks of all fan-outs.
    pub busy_ns: u64,
    /// Total critical-path nanoseconds (max busy chunk per fan-out).
    pub critical_ns: u64,
}

impl ParStats {
    /// Record one fan-out from its per-chunk busy times.
    pub fn record(&mut self, busy: &[u64]) {
        self.fanouts += 1;
        self.busy_ns += busy.iter().sum::<u64>();
        self.critical_ns += busy.iter().copied().max().unwrap_or(0);
    }

    /// Record one fan-out straight from `run_chunked` output. A
    /// single-chunk run is the inline sequential loop, not a fan-out —
    /// it is not recorded, so `workers = 1` reports all-zero stats.
    pub fn record_chunks<T>(&mut self, chunks: &[(T, u64)]) {
        if chunks.len() <= 1 {
            return;
        }
        self.fanouts += 1;
        self.busy_ns += chunks.iter().map(|&(_, ns)| ns).sum::<u64>();
        self.critical_ns += chunks.iter().map(|&(_, ns)| ns).max().unwrap_or(0);
    }

    /// Fold another accumulator in (e.g. a subsystem's own counter).
    pub fn merge(&mut self, other: ParStats) {
        self.fanouts += other.fanouts;
        self.busy_ns += other.busy_ns;
        self.critical_ns += other.critical_ns;
    }

    /// The critical-path speedup bound `Σ busy / Σ critical`: what the
    /// recorded fan-outs make attainable with enough cores. 1.0 when
    /// nothing was recorded.
    pub fn speedup_bound(&self) -> f64 {
        if self.critical_ns == 0 {
            1.0
        } else {
            self.busy_ns as f64 / self.critical_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_and_balance() {
        for n in [0usize, 1, 2, 7, 16, 257] {
            for w in [1usize, 2, 3, 4, 8, 64] {
                let ranges = chunk_ranges(n, w);
                if n == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), w.min(n), "n={n} w={w}");
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                let (min, max) = ranges
                    .iter()
                    .map(|r| r.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(min >= 1 && max - min <= 1, "n={n} w={w}: {min}..{max}");
            }
        }
    }

    #[test]
    fn run_chunked_merges_in_chunk_order() {
        for w in [1usize, 2, 3, 5, 8] {
            let out = run_chunked(11, w, |_, r| r.map(|i| i * i).collect::<Vec<_>>());
            let flat: Vec<usize> = out.into_iter().flat_map(|(v, _)| v).collect();
            let expect: Vec<usize> = (0..11).map(|i| i * i).collect();
            assert_eq!(flat, expect, "workers={w}");
        }
    }

    #[test]
    fn run_chunked_mut_sees_disjoint_windows() {
        for w in [1usize, 2, 4, 16] {
            let mut items: Vec<u64> = (0..13).collect();
            let sums = run_chunked_mut(&mut items, w, |_, range, chunk| {
                assert_eq!(chunk.len(), range.len());
                for (j, x) in chunk.iter_mut().enumerate() {
                    assert_eq!(*x, (range.start + j) as u64, "global index mapping");
                    *x *= 10;
                }
                chunk.iter().sum::<u64>()
            });
            let expect: Vec<u64> = (0..13u64).map(|i| i * 10).collect();
            assert_eq!(items, expect, "workers={w}");
            let total: u64 = sums.iter().map(|&(s, _)| s).sum();
            assert_eq!(total, expect.iter().sum::<u64>());
        }
    }

    #[test]
    fn par_stats_speedup_bound() {
        let mut st = ParStats::default();
        st.record(&[100, 100, 100, 100]); // perfectly balanced fan-out
        assert_eq!(st.fanouts, 1);
        assert!((st.speedup_bound() - 4.0).abs() < 1e-12);
        st.record(&[400]); // serial fan-out drags the bound down
        assert!((st.speedup_bound() - 800.0 / 500.0).abs() < 1e-12);
        let mut other = ParStats::default();
        other.record(&[7, 9]);
        st.merge(other);
        assert_eq!(st.fanouts, 3);
        assert_eq!(st.busy_ns, 816);
        assert_eq!(st.critical_ns, 509);
        assert_eq!(ParStats::default().speedup_bound(), 1.0);
    }
}
