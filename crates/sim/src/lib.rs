//! # jtp-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate every other crate in the JTP reproduction runs
//! on. The paper evaluated JTP inside OPNET, a commercial discrete-event
//! simulator; this crate provides the equivalent core facilities:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — integer-microsecond
//!   simulated clock (no floating-point drift, totally ordered),
//! * [`event::EventQueue`] — a monotonic future-event list with
//!   deterministic FIFO tie-breaking for simultaneous events,
//! * [`engine`] — the generic run loop driving a [`engine::Simulation`],
//! * [`rng::SimRng`] — seedable RNG with independent derived substreams so
//!   that e.g. channel noise and workload arrivals don't perturb each other,
//! * [`stats`] — EWMA filters, Welford online moments, confidence intervals
//!   and time-weighted averages used by estimators and by the experiment
//!   harness.
//!
//! Everything is single-threaded and deterministic: running the same
//! simulation with the same seed produces byte-identical results. This is a
//! deliberate departure from async-runtime-based designs (tokio et al.): a
//! reproduction harness must be exactly repeatable, and there is no real I/O
//! to overlap. The style follows smoltcp's event-driven, poll-based idiom.
//!
//! The one sanctioned form of intra-run parallelism lives in [`par`]:
//! deterministic fork-join fan-outs whose merged output is byte-identical to
//! the sequential loop they replace, used by the routing layer's flood-plane
//! recomputation. The event plane itself stays single-threaded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod ident;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{run_until, Simulation};
pub use event::{EventId, EventQueue};
pub use ident::{FlowId, NodeId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
