//! Simulated time.
//!
//! Time is kept in **integer microseconds** (`u64`). The paper's experiments
//! span up to 4000 simulated seconds; at microsecond resolution that is
//! ~2^32, leaving over 30 bits of headroom before overflow. Integer time
//! makes event ordering exact and runs reproducible — there is no
//! accumulation of floating-point error between platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock (microseconds since t=0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from (possibly fractional) seconds. Negative values clamp
    /// to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds since t=0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as `f64` (for reporting; never used for ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds; negative clamps to 0.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (for rate computations and reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d).as_micros(), 15_000);
        assert_eq!((t - d).as_micros(), 5_000);
        assert_eq!(((t + d) - t).as_micros(), d.as_micros());
        assert_eq!((d * 3).as_micros(), 15_000);
        assert_eq!((d / 5).as_micros(), 1_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_millis(1));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_micros(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_micros(3)
            ]
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000");
        assert_eq!(format!("{:?}", SimDuration::from_millis(2)), "0.002000s");
    }
}
