//! Statistical building blocks.
//!
//! * [`Ewma`] — exponentially weighted moving average, the filter family the
//!   paper's flip-flop path monitor (§5.1) is built from,
//! * [`MeanRange`] — EWMA of mean plus EWMA of the successive-difference
//!   range |x_i − x_{i−1}|, the exact pair of statistics in eq. (7),
//! * [`Welford`] — numerically stable online mean/variance for the
//!   experiment harness,
//! * [`ci95_halfwidth`] — 95 % confidence half-width across independent
//!   runs (the paper's error bars, §6.1.1),
//! * [`RateMeter`] — windowed packets-per-second estimation used for
//!   short-/long-term reception-rate plots (Fig. 5).

use crate::time::{SimDuration, SimTime};

/// Exponentially weighted moving average with weight `alpha` on new samples:
/// `x̄ ← (1−α)·x̄ + α·x`.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with the given weight on new samples, `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Change the smoothing weight (used by the flip-flop filter when
    /// switching between the stable and agile configurations).
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        self.alpha = alpha;
    }

    /// Current weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feed a sample; the first sample initialises the average (paper: "x̄ =
    /// x₀ initially").
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * x,
        };
        self.value = Some(v);
        v
    }

    /// Force the average to a specific value (agile catch-up).
    pub fn reset_to(&mut self, x: f64) {
        self.value = Some(x);
    }

    /// Current average, if at least one sample has been seen.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average or the provided default.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// The (x̄, R̄) statistic pair of the paper's eq. (7):
///
/// ```text
/// x̄ = (1−α)·x̄ + α·x_i            (x̄ = x₀ initially)
/// R̄ = (1−β)·R̄ + β·|x_i − x_{i−1}| (R̄ = x₀/2 initially)
/// ```
///
/// `R̄` estimates the deviation around `x̄`; the `d₂ = 1.128` constant in the
/// control limits of eq. (8) is the standard conversion from mean moving
/// range to standard deviation for subgroup size 2 (statistical quality
/// control, Montgomery).
#[derive(Clone, Debug)]
pub struct MeanRange {
    mean: Ewma,
    range: Ewma,
    last_sample: Option<f64>,
}

/// d₂ constant for moving ranges of subgroups of size two.
pub const D2_SUBGROUP2: f64 = 1.128;

impl MeanRange {
    /// Create with mean weight `alpha` and range weight `beta`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        MeanRange {
            mean: Ewma::new(alpha),
            range: Ewma::new(beta),
            last_sample: None,
        }
    }

    /// Feed a sample, updating both statistics.
    pub fn update(&mut self, x: f64) {
        self.mean.update(x);
        match self.last_sample {
            None => {
                // Paper: R̄ initialised to x₀ / 2.
                self.range.reset_to(x.abs() / 2.0);
            }
            Some(prev) => {
                self.range.update((x - prev).abs());
            }
        }
        self.last_sample = Some(x);
    }

    /// Update only the mean (used when a sample is declared an outlier: it
    /// must not contaminate the deviation estimate, §5.1 "R̄ … is calculated
    /// only from samples within the control limits").
    pub fn update_mean_only(&mut self, x: f64) {
        self.mean.update(x);
        self.last_sample = Some(x);
    }

    /// Switch smoothing weights (stable ↔ agile filter).
    pub fn set_weights(&mut self, alpha: f64, beta: f64) {
        self.mean.set_alpha(alpha);
        self.range.set_alpha(beta);
    }

    /// Estimated mean x̄.
    pub fn mean(&self) -> Option<f64> {
        self.mean.get()
    }

    /// Estimated moving range R̄.
    pub fn range(&self) -> Option<f64> {
        self.range.get()
    }

    /// Upper control limit `x̄ + 3·R̄/d₂` (eq. 8). None before first sample.
    pub fn ucl(&self) -> Option<f64> {
        Some(self.mean.get()? + 3.0 * self.range.get_or(0.0) / D2_SUBGROUP2)
    }

    /// Lower control limit `x̄ − 3·R̄/d₂` (eq. 8). None before first sample.
    pub fn lcl(&self) -> Option<f64> {
        Some(self.mean.get()? - 3.0 * self.range.get_or(0.0) / D2_SUBGROUP2)
    }

    /// True if `x` lies strictly outside the control limits.
    pub fn is_outlier(&self, x: f64) -> bool {
        match (self.lcl(), self.ucl()) {
            (Some(l), Some(u)) => x < l || x > u,
            _ => false,
        }
    }
}

/// Welford's online algorithm for mean and variance.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Half-width of the 95 % confidence interval of the mean of `samples`,
/// using Student-t critical values (two-sided, ν = n−1). Returns 0 for
/// fewer than two samples.
pub fn ci95_halfwidth(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let mut w = Welford::new();
    for &s in samples {
        w.push(s);
    }
    // Two-sided 97.5 % t critical values for ν = 1..30, then normal approx.
    const T: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    let nu = n - 1;
    let t = if nu <= 30 { T[nu - 1] } else { 1.96 };
    t * w.stddev() / (n as f64).sqrt()
}

/// Windowed event-rate meter: counts events and reports events/second over a
/// sliding window. Drives the "short-term / long-term average of the
/// reception rate" plots (Fig. 5) and the instantaneous-throughput plots
/// (Fig. 8).
#[derive(Clone, Debug)]
pub struct RateMeter {
    window: SimDuration,
    events: std::collections::VecDeque<SimTime>,
}

impl RateMeter {
    /// Create with the given averaging window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        RateMeter {
            window,
            events: std::collections::VecDeque::new(),
        }
    }

    /// Record an event at `now`.
    pub fn record(&mut self, now: SimTime) {
        self.events.push_back(now);
        self.evict(now);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.since(SimTime::ZERO).saturating_sub(self.window);
        while let Some(&front) = self.events.front() {
            if front.since(SimTime::ZERO) < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Events per second over the window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.events.len() as f64 / self.window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_initialises() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.get(), None);
        assert_eq!(e.update(10.0), 10.0);
        let v = e.update(20.0);
        assert!((v - 11.0).abs() < 1e-12); // 0.9*10 + 0.1*20
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(5.0);
        }
        assert!((e.get().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn mean_range_initialisation_matches_paper() {
        let mut mr = MeanRange::new(0.1, 0.1);
        mr.update(8.0);
        assert_eq!(mr.mean(), Some(8.0));
        assert_eq!(mr.range(), Some(4.0)); // x0 / 2
    }

    #[test]
    fn mean_range_control_limits() {
        let mut mr = MeanRange::new(0.5, 0.5);
        mr.update(10.0); // mean 10, range 5
        let ucl = mr.ucl().unwrap();
        let lcl = mr.lcl().unwrap();
        assert!((ucl - (10.0 + 3.0 * 5.0 / 1.128)).abs() < 1e-12);
        assert!((lcl - (10.0 - 3.0 * 5.0 / 1.128)).abs() < 1e-12);
        assert!(mr.is_outlier(ucl + 1.0));
        assert!(mr.is_outlier(lcl - 1.0));
        assert!(!mr.is_outlier(10.0));
    }

    #[test]
    fn outlier_update_does_not_touch_range() {
        let mut mr = MeanRange::new(0.5, 0.5);
        mr.update(10.0);
        let r_before = mr.range().unwrap();
        mr.update_mean_only(1000.0);
        assert_eq!(mr.range().unwrap(), r_before);
        assert!(mr.mean().unwrap() > 10.0);
    }

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ci95_zero_for_tiny_samples() {
        assert_eq!(ci95_halfwidth(&[]), 0.0);
        assert_eq!(ci95_halfwidth(&[3.0]), 0.0);
    }

    #[test]
    fn ci95_reasonable_for_constant_data() {
        assert_eq!(ci95_halfwidth(&[5.0; 10]), 0.0);
    }

    #[test]
    fn ci95_scales_with_spread() {
        let narrow = ci95_halfwidth(&[1.0, 1.1, 0.9, 1.05, 0.95]);
        let wide = ci95_halfwidth(&[1.0, 2.0, 0.0, 1.5, 0.5]);
        assert!(wide > narrow);
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        for i in 0..10 {
            m.record(SimTime::from_secs_f64(i as f64));
        }
        // 10 events in a 10 s window => 1 event/s.
        assert!((m.rate(SimTime::from_secs_f64(9.0)) - 1.0).abs() < 1e-9);
        // 100 s later everything has left the window.
        assert_eq!(m.rate(SimTime::from_secs_f64(109.0)), 0.0);
    }
}
