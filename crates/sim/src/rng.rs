//! Seedable randomness with independent substreams.
//!
//! Every stochastic component (channel states, workload arrivals, mobility,
//! TDMA schedule shuffling…) draws from its own [`SimRng`] derived from the
//! master experiment seed with a distinct stream label. This means, e.g.,
//! changing how many random numbers the channel consumes does not perturb
//! the workload arrival pattern — essential for paired comparisons such as
//! "all the protocols run under the same conditions in the same run" (§6.1.2
//! of the paper).
//!
//! The generator is xoshiro256++ implemented in-crate (the build is fully
//! offline, so no `rand` dependency): fast, 256-bit state, and — critically
//! for reproduction — byte-identical streams on every platform.

/// A deterministic random stream.
///
/// xoshiro256++ core plus the substream-derivation scheme and the handful
/// of distributions the simulator needs (Bernoulli, exponential, uniform
/// range, Fisher–Yates shuffle).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step — used to whiten seed material when deriving substreams
/// and to expand a 64-bit seed into the 256-bit generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create the master stream for an experiment.
    pub fn new(seed: u64) -> Self {
        // Whiten: xoshiro seeded with small/correlated integers needs
        // independent state words; SplitMix64 is the reference expander.
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { s: state }
    }

    /// Derive an independent substream identified by `label`.
    ///
    /// Deriving is a pure function of `(seed, label)` — it does not consume
    /// state from `self` — so substreams can be created in any order.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SimRng::new(seed ^ h)
    }

    /// Derive a numbered substream (e.g. one per node).
    pub fn derive_indexed(seed: u64, label: &str, index: u64) -> Self {
        let mut s = seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        let mixed = splitmix64(&mut s);
        Self::derive(mixed, label)
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to
    /// [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        let x = lo + self.f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation (Lemire); bias is < 2^-64·n,
        // far below anything observable at simulation scales.
        ((self.u64() as u128 * n as u128) >> 64) as usize
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = loop {
            let x = self.f64();
            if x > 0.0 {
                break x;
            }
        };
        -mean * u.ln()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element (None on empty slice).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Raw f64 in [0,1). Exposed for distributions built by callers.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Raw u64 (the xoshiro256++ output function). Exposed for
    /// hashing/schedule derivation by callers.
    pub fn u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_order_independent_and_label_sensitive() {
        let mut c1 = SimRng::derive(7, "channel");
        let mut w1 = SimRng::derive(7, "workload");
        let mut w2 = SimRng::derive(7, "workload");
        let mut c2 = SimRng::derive(7, "channel");
        assert_eq!(c1.u64(), c2.u64());
        assert_eq!(w1.u64(), w2.u64());
        let mut c = SimRng::derive(7, "channel");
        let mut w = SimRng::derive(7, "workload");
        assert_ne!(c.u64(), w.u64());
    }

    #[test]
    fn derive_indexed_separates_nodes() {
        let mut a = SimRng::derive_indexed(9, "mob", 0);
        let mut b = SimRng::derive_indexed(9, "mob", 1);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_statistics() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count() as f64;
        let p = hits / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(6);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(r.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut r = SimRng::new(12);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_handles_empty() {
        let mut r = SimRng::new(10);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(*r.choose(&[42]).unwrap(), 42);
    }
}
