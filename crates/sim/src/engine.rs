//! The simulation run loop.
//!
//! A simulation is any type implementing [`Simulation`]; the engine pops
//! events from an [`EventQueue`] and dispatches them until a stop condition
//! is met. Keeping the loop generic lets every layer (MAC, transport,
//! workload) share one event type defined by the assembly crate without this
//! crate knowing anything about networking.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A discrete-event simulation model.
pub trait Simulation {
    /// The (usually enum) event type dispatched by the engine.
    type Event;

    /// Handle one event. `now` is the event's timestamp; new events may be
    /// scheduled on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a [`run_until`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The horizon was reached with events still pending.
    Horizon,
    /// The event queue drained before the horizon.
    QueueEmpty,
}

/// Run `sim` until the queue is empty or the next event lies strictly after
/// `horizon`. Events scheduled *at* the horizon are still delivered.
pub fn run_until<S: Simulation>(
    sim: &mut S,
    queue: &mut EventQueue<S::Event>,
    horizon: SimTime,
) -> StopReason {
    loop {
        match queue.peek_time() {
            None => return StopReason::QueueEmpty,
            Some(t) if t > horizon => return StopReason::Horizon,
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event exists");
                sim.handle(now, ev, queue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A model that re-schedules itself `remaining` times at 1 ms intervals.
    struct Ticker {
        ticks: Vec<SimTime>,
        remaining: u32,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
            self.ticks.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                q.schedule_in(SimDuration::from_millis(1), ());
            }
        }
    }

    #[test]
    fn runs_until_queue_empty() {
        let mut sim = Ticker {
            ticks: vec![],
            remaining: 4,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, ());
        let reason = run_until(&mut sim, &mut q, SimTime::MAX);
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(sim.ticks.len(), 5);
        assert_eq!(sim.ticks[4], SimTime::from_millis(4));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Ticker {
            ticks: vec![],
            remaining: 100,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, ());
        let reason = run_until(&mut sim, &mut q, SimTime::from_millis(3));
        assert_eq!(reason, StopReason::Horizon);
        // Events at 0,1,2,3 ms were delivered; 4 ms is pending.
        assert_eq!(sim.ticks.len(), 4);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn resume_after_horizon() {
        let mut sim = Ticker {
            ticks: vec![],
            remaining: 10,
        };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, ());
        run_until(&mut sim, &mut q, SimTime::from_millis(5));
        let n = sim.ticks.len();
        run_until(&mut sim, &mut q, SimTime::from_millis(10));
        assert!(sim.ticks.len() > n, "simulation resumes where it stopped");
        assert_eq!(*sim.ticks.last().unwrap(), SimTime::from_millis(10));
    }
}
