//! The future-event list.
//!
//! Hot-path design (this is the innermost loop of every experiment):
//!
//! * events live in a **slab** (`Vec`-backed, free-list recycled) addressed
//!   by [`EventId`] = (slot index, generation) — scheduling, cancelling and
//!   popping touch **no hash maps**;
//! * the ordering structure is a **4-ary min-heap of 24-byte keys**
//!   `(time, class, seq, slot)` — payloads are never moved during sifts and
//!   four-way branching halves the tree depth compared to a binary heap;
//! * cancellation flips a flag in the slab (dropping the payload eagerly)
//!   and is O(1) amortised; the heap key is discarded lazily, except that
//!   the *top* of the heap is kept live so [`EventQueue::peek_time`] is an
//!   O(1) `&self` read;
//! * ties at equal times are delivered in **class order first** (see
//!   [`EventQueue::schedule_at_class`]), then FIFO in scheduling order —
//!   the sequence number makes whole simulations reproducible from a seed.

use crate::time::SimTime;

/// An event handle that can be used to cancel a scheduled event.
///
/// Packs a slab slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits), so handles to delivered/cancelled events
/// are detected stale in O(1) without any lookup table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// Default scheduling class (see [`EventQueue::schedule_at_class`]).
pub const CLASS_DEFAULT: u8 = 128;

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap key: 24 bytes, ordered by `(time, class, seq)`.
///
/// `ord` packs the scheduling class into the top 8 bits above a 56-bit
/// sequence number, so one `u64` comparison resolves both the class
/// priority and the FIFO tie-break.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Key {
    time: SimTime,
    ord: u64,
    slot: u32,
}

const SEQ_BITS: u32 = 56;

/// One slab entry.
#[derive(Debug)]
struct Slot<E> {
    /// Bumped every time the slot is freed; stale [`EventId`]s mismatch.
    generation: u32,
    /// True while a cancelled entry's heap key has not been collected yet.
    cancelled: bool,
    /// The payload; `None` once delivered, cancelled or free.
    event: Option<E>,
}

/// Monotonic future-event list with deterministic class-then-FIFO
/// tie-breaking, O(log n) scheduling/popping and O(1) amortised
/// cancellation — no hashing anywhere on the hot path.
pub struct EventQueue<E> {
    heap: Vec<Key>,
    slab: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    /// Cancelled entries whose heap keys are still uncollected.
    cancelled_pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            cancelled_pending: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress measure).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending (not yet popped, possibly cancelled) entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at` in the default class.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a logic error in a discrete-event simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_at_class(at, CLASS_DEFAULT, event)
    }

    /// Schedule `event` at absolute time `at` with an explicit class.
    ///
    /// At equal timestamps, lower classes are delivered first; within a
    /// class, delivery is FIFO in scheduling order. Classes let a model pin
    /// a deterministic intra-timestamp order that does not depend on *when*
    /// the events were scheduled (the TDMA slot chain uses class 0 so a
    /// slot boundary always precedes same-instant timer events, whether the
    /// slot event was scheduled a frame ago or rescheduled moments ago).
    pub fn schedule_at_class(&mut self, at: SimTime, class: u8, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert!(seq < 1 << SEQ_BITS, "sequence space exhausted");
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slab[s as usize];
                debug_assert!(entry.event.is_none() && !entry.cancelled);
                entry.event = Some(event);
                s
            }
            None => {
                self.slab.push(Slot {
                    generation: 0,
                    cancelled: false,
                    event: Some(event),
                });
                (self.slab.len() - 1) as u32
            }
        };
        let key = Key {
            time: at,
            ord: ((class as u64) << SEQ_BITS) | seq,
            slot,
        };
        self.heap.push(key);
        self.sift_up(self.heap.len() - 1);
        EventId::new(slot, self.slab[slot as usize].generation)
    }

    /// Schedule `event` after `delay` relative to now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the id was
    /// still pending (i.e. not yet delivered or already cancelled).
    ///
    /// The payload is dropped immediately; the heap key is collected when
    /// it reaches the top, so cancel is O(1) amortised.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(entry) = self.slab.get_mut(id.slot() as usize) else {
            return false;
        };
        if entry.generation != id.generation() || entry.cancelled || entry.event.is_none() {
            return false;
        }
        entry.cancelled = true;
        entry.event = None;
        self.cancelled_pending += 1;
        self.collect_cancelled_top();
        true
    }

    /// Pop the next non-cancelled event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let key = self.pop_key()?;
        let entry = &mut self.slab[key.slot as usize];
        debug_assert!(!entry.cancelled, "cancelled entry exposed at heap top");
        let event = entry.event.take().expect("live heap key has a payload");
        Self::release(&mut self.free, entry, key.slot);
        self.collect_cancelled_top();
        debug_assert!(key.time >= self.now, "event queue went backwards");
        self.now = key.time;
        self.popped += 1;
        Some((key.time, event))
    }

    /// Timestamp of the next pending event without popping it.
    ///
    /// O(1) and `&self`: the heap top is kept non-cancelled by
    /// [`EventQueue::cancel`] and [`EventQueue::pop`].
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.time)
    }

    /// Return the slot to the free list and invalidate outstanding ids.
    fn release(free: &mut Vec<u32>, entry: &mut Slot<E>, slot: u32) {
        debug_assert!(entry.event.is_none());
        entry.cancelled = false;
        entry.generation = entry.generation.wrapping_add(1);
        free.push(slot);
    }

    /// Drop cancelled keys off the heap top so `peek_time` stays exact.
    /// O(1) when no cancellations are outstanding (the common case).
    fn collect_cancelled_top(&mut self) {
        while self.cancelled_pending > 0 {
            let Some(top) = self.heap.first() else { break };
            let entry = &mut self.slab[top.slot as usize];
            if !entry.cancelled {
                break;
            }
            let slot = top.slot;
            Self::release(&mut self.free, entry, slot);
            self.cancelled_pending -= 1;
            self.pop_key();
        }
    }

    // --------------------------------------------------------------
    // 4-ary min-heap over `Key`
    // --------------------------------------------------------------

    fn pop_key(&mut self) -> Option<Key> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let key = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        key
    }

    /// Hole-based sift-up: the moving key is written exactly once.
    fn sift_up(&mut self, mut i: usize) {
        let key = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if key < self.heap[parent] {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = key;
    }

    /// Hole-based sift-down: the moving key is written exactly once.
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let key = self.heap[i];
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let mut min = first_child;
            let last_child = (first_child + 4).min(len);
            for c in (first_child + 1)..last_child {
                if self.heap[c] < self.heap[min] {
                    min = c;
                }
            }
            if self.heap[min] < key {
                self.heap[i] = self.heap[min];
                i = min;
            } else {
                break;
            }
        }
        self.heap[i] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn classes_order_before_fifo_at_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_at(t, "default-first");
        q.schedule_at_class(t, 0, "class0-late");
        q.schedule_at(t, "default-second");
        q.schedule_at(SimTime::from_millis(1), "earlier-time");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                "earlier-time",
                "class0-late",
                "default-first",
                "default-second"
            ]
        );
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_millis(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        let b = q.schedule_at(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert!(q.pop().is_none());
        assert!(!q.cancel(b), "cancelling a delivered event reports false");
    }

    #[test]
    fn stale_id_does_not_hit_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        q.pop();
        // The slot is recycled for a fresh event; the old id must not
        // cancel it.
        let b = q.schedule_at(SimTime::from_millis(2), "b");
        assert!(!q.cancel(a), "stale id must be rejected");
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_is_exact_after_cancel() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(9)));
    }

    #[test]
    fn cancel_heavy_churn_preserves_order() {
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        for round in 0..50u64 {
            let ids: Vec<_> = (0..20u64)
                .map(|i| {
                    let t = SimTime::from_micros(((round * 20 + i) * 7919) % 50_000 + 50_000);
                    (q.schedule_at(t, (round, i)), i)
                })
                .collect();
            for (id, i) in ids {
                if i % 3 == 0 {
                    assert!(q.cancel(id));
                } else {
                    live.push((round, i));
                }
            }
        }
        let mut last = SimTime::ZERO;
        let mut delivered = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert!(t >= last);
            last = t;
            delivered.push(e);
        }
        live.sort();
        delivered.sort();
        assert_eq!(delivered, live);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }
}
