//! The future-event list.
//!
//! A binary heap keyed by `(SimTime, sequence)`. The sequence number makes
//! ordering of *simultaneous* events deterministic (FIFO in scheduling
//! order), which in turn makes whole simulations reproducible from a seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event handle that can be used to cancel a scheduled event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    cancelled: bool,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Monotonic future-event list with deterministic tie-breaking and O(log n)
/// scheduling/popping.
///
/// Cancellation is *lazy*: [`EventQueue::cancel`] marks the id and the entry
/// is discarded when it reaches the top of the heap, so cancel is O(1)
/// amortised.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: std::collections::HashSet<u64>,
    pending: std::collections::HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            pending: std::collections::HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress measure).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending (not yet popped, possibly cancelled) entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a logic error in a discrete-event simulation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry {
            time: at,
            seq,
            cancelled: false,
            event,
        });
        EventId(seq)
    }

    /// Schedule `event` after `delay` relative to now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the id was
    /// still pending (i.e. not yet delivered or already cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Pop the next non-cancelled event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if entry.cancelled || self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the top first so the answer is exact.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
            } else {
                return Some(top.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_millis(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        let b = q.schedule_at(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert!(q.pop().is_none());
        assert!(!q.cancel(b), "cancelling a delivered event reports false");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(9)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }
}
