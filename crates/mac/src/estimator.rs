//! MAC-layer statistics: the link estimates iJTP consumes.
//!
//! §2.2.2: *"iJTP is responsible for acquiring from the MAC layer an
//! estimate of the available rate to every neighbor, as well as an estimate
//! of the packet loss rate on that link."* And §2.1.1: the available rate
//! is *"determined by the current rate of unused (idle) time slots"* and
//! *"must be normalized by the average number of MAC-level
//! transmissions"*.

use jtp_sim::stats::Ewma;

/// Per-neighbour link statistics: per-attempt loss rate and average
/// attempts per delivered frame.
#[derive(Clone, Debug)]
pub struct LinkEstimator {
    loss: Ewma,
    attempts: Ewma,
    prior_loss: f64,
    observed_attempts: u64,
}

impl LinkEstimator {
    /// Create with a prior loss estimate used before any observations.
    pub fn new(prior_loss: f64, alpha: f64) -> Self {
        LinkEstimator {
            loss: Ewma::new(alpha),
            attempts: Ewma::new(alpha),
            prior_loss: prior_loss.clamp(0.0, 1.0),
            observed_attempts: 0,
        }
    }

    /// Record the outcome of one transmission attempt.
    pub fn record_attempt(&mut self, success: bool) {
        self.loss.update(if success { 0.0 } else { 1.0 });
        self.observed_attempts += 1;
    }

    /// Record how many attempts a delivered frame consumed.
    pub fn record_delivery_attempts(&mut self, attempts: u32) {
        self.attempts.update(attempts as f64);
    }

    /// Current per-attempt loss estimate (prior before observations).
    pub fn loss_rate(&self) -> f64 {
        self.loss.get_or(self.prior_loss).clamp(0.0, 1.0)
    }

    /// Average MAC transmissions per delivered frame (≥ 1).
    pub fn avg_attempts(&self) -> f64 {
        self.attempts.get_or(1.0).max(1.0)
    }

    /// Attempts observed so far (test/diagnostic).
    pub fn observations(&self) -> u64 {
        self.observed_attempts
    }
}

/// Idle-slot available-rate estimator for a node's own transmit capacity.
///
/// Each owned TDMA slot is either *used* (a frame was sent) or *idle*. The
/// available rate is `idle_fraction × per_node_capacity`, smoothed with an
/// EWMA per owned slot.
#[derive(Clone, Debug)]
pub struct AvailRateEstimator {
    idle_fraction: Ewma,
    capacity_pps: f64,
}

impl AvailRateEstimator {
    /// Create given the node's slot capacity in packets/second.
    pub fn new(capacity_pps: f64, alpha: f64) -> Self {
        assert!(capacity_pps > 0.0);
        AvailRateEstimator {
            idle_fraction: Ewma::new(alpha),
            capacity_pps,
        }
    }

    /// Record one owned slot: `idle == true` when the queue was empty.
    pub fn record_slot(&mut self, idle: bool) {
        self.idle_fraction.update(if idle { 1.0 } else { 0.0 });
    }

    /// Currently available transmission rate (pps). Before any observation
    /// the full capacity is assumed available.
    pub fn available_pps(&self) -> f64 {
        self.idle_fraction.get_or(1.0).clamp(0.0, 1.0) * self.capacity_pps
    }

    /// The node's raw slot capacity (pps).
    pub fn capacity_pps(&self) -> f64 {
        self.capacity_pps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_estimator_uses_prior_then_learns() {
        let mut e = LinkEstimator::new(0.1, 0.2);
        assert_eq!(e.loss_rate(), 0.1);
        for _ in 0..100 {
            e.record_attempt(false);
        }
        assert!(e.loss_rate() > 0.9, "all failures: loss ~1");
        for _ in 0..200 {
            e.record_attempt(true);
        }
        assert!(e.loss_rate() < 0.05, "all successes: loss ~0");
        assert_eq!(e.observations(), 300);
    }

    #[test]
    fn loss_estimator_tracks_mixture() {
        let mut e = LinkEstimator::new(0.5, 0.05);
        for i in 0..1000 {
            e.record_attempt(i % 5 != 0); // 20% loss
        }
        assert!(
            (e.loss_rate() - 0.2).abs() < 0.1,
            "loss = {}",
            e.loss_rate()
        );
    }

    #[test]
    fn avg_attempts_floors_at_one() {
        let mut e = LinkEstimator::new(0.1, 0.2);
        assert_eq!(e.avg_attempts(), 1.0);
        e.record_delivery_attempts(3);
        e.record_delivery_attempts(2);
        assert!(e.avg_attempts() > 1.0);
    }

    #[test]
    fn avail_rate_full_when_idle() {
        let mut a = AvailRateEstimator::new(5.0, 0.2);
        assert_eq!(a.available_pps(), 5.0);
        for _ in 0..100 {
            a.record_slot(true);
        }
        assert!((a.available_pps() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn avail_rate_zero_when_saturated() {
        let mut a = AvailRateEstimator::new(5.0, 0.2);
        for _ in 0..100 {
            a.record_slot(false);
        }
        assert!(a.available_pps() < 0.01);
    }

    #[test]
    fn avail_rate_tracks_load_fraction() {
        let mut a = AvailRateEstimator::new(4.0, 0.05);
        for i in 0..1000 {
            a.record_slot(i % 2 == 0); // 50% idle
        }
        assert!(
            (a.available_pps() - 2.0).abs() < 0.4,
            "{}",
            a.available_pps()
        );
    }
}
