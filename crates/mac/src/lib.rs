//! # jtp-mac — the JAVeLEN-like TDMA MAC
//!
//! The paper's substrate (§2): *"JAVeLEN deploys a TDMA MAC which
//! orchestrates nodes' transmissions by using pseudo-random schedules,
//! providing collision-free access to the channel and allowing nodes to
//! turn off their radios when they are not in use. Each node also keeps
//! statistics about link transmissions and idle slots in order to provide
//! estimates of the available transmission rate and of the packet loss rate
//! on every link."*
//!
//! This crate reproduces exactly that transport-visible surface:
//!
//! * [`schedule::TdmaSchedule`] — a pseudo-random, collision-free slot
//!   permutation (one owned slot per node per frame),
//! * [`NodeMac`] — per-node queue + stop-and-wait ARQ with a *per-packet*
//!   attempt budget (the knob iJTP turns),
//! * [`estimator`] — the idle-slot available-rate estimator and per-link
//!   loss-rate / average-attempts EWMAs that Algorithm 1 consumes.
//!
//! The MAC is mechanism only: *policy* (what attempt budget a packet gets,
//! when a packet is dropped for energy) lives in the transport's hop module
//! (iJTP), which the assembly crate invokes around [`NodeMac`] operations —
//! mirroring the paper's "iJTP is implemented as a separate loadable
//! plug-in module of the MAC protocol".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod frame;
pub mod node;
pub mod schedule;
pub mod sleep;

pub use estimator::{AvailRateEstimator, LinkEstimator};
pub use frame::{Frame, FrameKind};
pub use node::{MacConfig, MacStats, NodeMac, SlotOutcome};
pub use schedule::TdmaSchedule;
pub use sleep::{DutyCycleConfig, SleepSchedule};
