//! MAC frames: one queued link-layer transmission unit.

use jtp_sim::NodeId;

/// Coarse frame class, used for energy attribution (data vs. feedback) and
/// ARQ policy defaults.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// Transport data.
    Data,
    /// Transport feedback (JTP ACK / TCP ACK / ATP feedback).
    Ack,
}

/// A frame waiting in (or at the head of) a node's MAC queue.
///
/// `P` is the transport payload type — the MAC never inspects it; the
/// assembly layer's hop hooks do (the iJTP plug-in model).
#[derive(Clone, Debug)]
pub struct Frame<P> {
    /// Transmitting node (owner of the queue this frame sits in).
    pub src: NodeId,
    /// Intended next-hop receiver.
    pub dst: NodeId,
    /// Data or feedback.
    pub kind: FrameKind,
    /// Wire size in bytes (headers + payload), for airtime/energy.
    pub bytes: usize,
    /// ARQ budget: maximum transmissions of this frame on this link. Set
    /// by the transport's hop module on the first attempt.
    pub max_attempts: u32,
    /// Transmissions performed so far.
    pub attempts: u32,
    /// The transport payload.
    pub payload: P,
}

impl<P> Frame<P> {
    /// Construct a frame with no attempts yet and a provisional ARQ budget
    /// of 1 (hooks raise it on the first attempt).
    pub fn new(src: NodeId, dst: NodeId, kind: FrameKind, bytes: usize, payload: P) -> Self {
        Frame {
            src,
            dst,
            kind,
            bytes,
            max_attempts: 1,
            attempts: 0,
            payload,
        }
    }

    /// True before the first transmission attempt.
    pub fn is_first_attempt(&self) -> bool {
        self.attempts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_state() {
        let f = Frame::new(NodeId(0), NodeId(1), FrameKind::Data, 828, "payload");
        assert!(f.is_first_attempt());
        assert_eq!(f.max_attempts, 1);
        assert_eq!(f.bytes, 828);
    }
}
