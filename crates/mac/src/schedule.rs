//! Pseudo-random collision-free TDMA schedule.
//!
//! Time is divided into fixed slots grouped into frames of `n` slots for an
//! `n`-node network. Within each frame every node owns exactly one slot, in
//! an order given by a pseudo-random permutation seeded by the frame index
//! (the JAVeLEN "pseudo-random schedules") — collision-free by
//! construction, with enough shuffling that no node is systematically
//! favoured relative to flow round-trips.

use jtp_sim::{NodeId, SimDuration, SimRng, SimTime};

/// The global slot schedule.
#[derive(Clone, Debug)]
pub struct TdmaSchedule {
    n_nodes: u32,
    slot: SimDuration,
    seed: u64,
    cached_frame: Option<(u64, Vec<NodeId>)>,
}

impl TdmaSchedule {
    /// Create a schedule for `n_nodes` nodes with the given slot duration.
    pub fn new(n_nodes: u32, slot: SimDuration, seed: u64) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        assert!(!slot.is_zero(), "slot duration must be positive");
        TdmaSchedule {
            n_nodes,
            slot,
            seed,
            cached_frame: None,
        }
    }

    /// Slot duration.
    pub fn slot_duration(&self) -> SimDuration {
        self.slot
    }

    /// Duration of one full frame (every node transmits once).
    pub fn frame_duration(&self) -> SimDuration {
        self.slot * self.n_nodes as u64
    }

    /// A node's maximum transmission rate in frames/packets per second:
    /// one owned slot per frame.
    pub fn per_node_capacity_pps(&self) -> f64 {
        1.0 / self.frame_duration().as_secs_f64()
    }

    /// Global slot index containing time `t`.
    pub fn slot_index_at(&self, t: SimTime) -> u64 {
        t.as_micros() / self.slot.as_micros()
    }

    /// Start time of a global slot index.
    pub fn slot_start(&self, slot_index: u64) -> SimTime {
        SimTime::from_micros(slot_index * self.slot.as_micros())
    }

    fn frame_permutation(&mut self, frame_index: u64) -> &[NodeId] {
        let stale = match &self.cached_frame {
            Some((idx, _)) => *idx != frame_index,
            None => true,
        };
        if stale {
            let mut perm: Vec<NodeId> = (0..self.n_nodes).map(NodeId).collect();
            let mut rng = SimRng::derive_indexed(self.seed, "tdma-frame", frame_index);
            rng.shuffle(&mut perm);
            self.cached_frame = Some((frame_index, perm));
        }
        &self.cached_frame.as_ref().expect("just cached").1
    }

    /// The node owning a global slot.
    pub fn owner(&mut self, slot_index: u64) -> NodeId {
        let frame = slot_index / self.n_nodes as u64;
        let within = (slot_index % self.n_nodes as u64) as usize;
        self.frame_permutation(frame)[within]
    }

    /// The global slot index of `node`'s owned slot within `frame_index`.
    ///
    /// Derives the frame's permutation locally instead of touching the
    /// single-frame cache, so far-future probes (battery death-time
    /// prediction walks frames well ahead of the event clock) don't
    /// thrash the sequential `owner()` scans of the slot path.
    pub fn owned_slot_in_frame(&self, node: NodeId, frame_index: u64) -> u64 {
        let mut perm: Vec<NodeId> = (0..self.n_nodes).map(NodeId).collect();
        let mut rng = SimRng::derive_indexed(self.seed, "tdma-frame", frame_index);
        rng.shuffle(&mut perm);
        let within = perm
            .iter()
            .position(|&v| v == node)
            .expect("every node owns one slot per frame");
        frame_index * self.n_nodes as u64 + within as u64
    }

    /// Number of nodes (slots per frame).
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// The first slot strictly after time `after` owned by a node marked in
    /// `owner_set` (indexed by node id). `None` when the set is empty.
    ///
    /// This is the idle-slot-skipping query: since every node owns exactly
    /// one slot per frame, the scan inspects at most two frames (O(n)), and
    /// the event loop can jump over arbitrarily long idle stretches in one
    /// step instead of firing an event per slot.
    pub fn next_owned_slot(&mut self, after: SimTime, owner_set: &[bool]) -> Option<u64> {
        debug_assert_eq!(owner_set.len(), self.n_nodes as usize);
        if !owner_set.iter().any(|&b| b) {
            return None;
        }
        // First slot whose start lies strictly after `after`.
        let mut slot = after.as_micros() / self.slot.as_micros() + 1;
        loop {
            // Every node appears once per frame, so a non-empty owner set
            // is matched within `n_nodes` consecutive slots.
            let frame = slot / self.n_nodes as u64;
            let within = (slot % self.n_nodes as u64) as usize;
            let perm = self.frame_permutation(frame);
            for (off, owner) in perm[within..].iter().enumerate() {
                if owner_set[owner.index()] {
                    return Some(slot + off as u64);
                }
            }
            slot += (self.n_nodes as usize - within) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: u32) -> TdmaSchedule {
        TdmaSchedule::new(n, SimDuration::from_millis(25), 42)
    }

    #[test]
    fn every_node_owns_one_slot_per_frame() {
        let mut s = sched(8);
        for frame in 0..20u64 {
            let mut owners: Vec<_> = (0..8u64).map(|i| s.owner(frame * 8 + i)).collect();
            owners.sort();
            assert_eq!(owners, (0..8).map(NodeId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutations_vary_between_frames() {
        let mut s = sched(8);
        let f0: Vec<_> = (0..8u64).map(|i| s.owner(i)).collect();
        let mut any_different = false;
        for frame in 1..10u64 {
            let f: Vec<_> = (0..8u64).map(|i| s.owner(frame * 8 + i)).collect();
            if f != f0 {
                any_different = true;
            }
        }
        assert!(any_different, "schedule should be pseudo-random per frame");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = sched(5);
        let mut b = sched(5);
        for i in 0..100u64 {
            assert_eq!(a.owner(i), b.owner(i));
        }
    }

    #[test]
    fn owner_is_random_access() {
        // Querying out of order must agree with in-order queries.
        let mut a = sched(4);
        let mut b = sched(4);
        let backwards: Vec<_> = (0..40u64).rev().map(|i| a.owner(i)).collect();
        let forwards: Vec<_> = (0..40u64).map(|i| b.owner(i)).collect();
        assert_eq!(backwards.into_iter().rev().collect::<Vec<_>>(), forwards);
    }

    #[test]
    fn timing_helpers() {
        let s = sched(4);
        assert_eq!(s.frame_duration(), SimDuration::from_millis(100));
        assert!((s.per_node_capacity_pps() - 10.0).abs() < 1e-9);
        assert_eq!(s.slot_index_at(SimTime::from_millis(70)), 2);
        assert_eq!(s.slot_start(2), SimTime::from_millis(50));
        assert_eq!(s.slot_index_at(SimTime::ZERO), 0);
    }

    #[test]
    fn single_node_degenerate() {
        let mut s = sched(1);
        for i in 0..5u64 {
            assert_eq!(s.owner(i), NodeId(0));
        }
    }

    #[test]
    fn owned_slot_in_frame_matches_owner_scan() {
        let mut s = sched(6);
        for frame in 0..30u64 {
            for node in 0..6u32 {
                let slot = s.owned_slot_in_frame(NodeId(node), frame);
                assert_eq!(slot / 6, frame, "slot lies in the queried frame");
                assert_eq!(s.owner(slot), NodeId(node));
            }
        }
    }

    #[test]
    fn next_owned_slot_matches_linear_scan() {
        let mut a = sched(8);
        let mut b = sched(8);
        let mut owned = vec![false; 8];
        owned[2] = true;
        owned[5] = true;
        for start_slot in 0..40u64 {
            // Reference: scan slots one by one.
            let after = a.slot_start(start_slot);
            let expect = (start_slot + 1..)
                .find(|&s| owned[a.owner(s).index()])
                .unwrap();
            assert_eq!(b.next_owned_slot(after, &owned), Some(expect));
        }
    }

    #[test]
    fn next_owned_slot_is_strictly_after() {
        let mut s = sched(4);
        let all = vec![true; 4];
        // From exactly a slot boundary, the same slot must not be returned.
        for slot in 0..20u64 {
            let next = s.next_owned_slot(s.slot_start(slot), &all).unwrap();
            assert_eq!(next, slot + 1, "every slot owned => next slot");
        }
        // Mid-slot queries also move to the next boundary.
        let mid = SimTime::from_micros(s.slot_start(3).as_micros() + 1);
        assert_eq!(s.next_owned_slot(mid, &all), Some(4));
    }

    #[test]
    fn next_owned_slot_empty_set_is_none() {
        let mut s = sched(4);
        assert_eq!(s.next_owned_slot(SimTime::ZERO, &[false; 4]), None);
    }
}
