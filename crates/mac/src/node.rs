//! Per-node MAC state: queue, stop-and-wait ARQ, and statistics.
//!
//! The slot-by-slot mechanics are driven by the assembly layer (it owns the
//! channel model and the transport hop hooks); `NodeMac` provides the
//! queue/ARQ state machine:
//!
//! ```text
//! owner's slot:
//!   queue empty           -> Idle            (counted for available rate)
//!   head frame, attempt   -> assembly samples the channel
//!     success             -> Delivered(frame)
//!     failure, budget left-> Retrying        (frame stays at head)
//!     failure, exhausted  -> Exhausted(frame)(link-layer drop)
//! ```
//!
//! A frame's `max_attempts` is the per-packet budget iJTP computed — the
//! paper's central MAC/transport coupling.

use crate::estimator::{AvailRateEstimator, LinkEstimator};
use crate::frame::Frame;
use jtp_sim::NodeId;
use std::collections::{HashMap, VecDeque};

/// MAC configuration shared by all nodes.
#[derive(Clone, Copy, Debug)]
pub struct MacConfig {
    /// Queue capacity in frames; arrivals beyond it are dropped and
    /// counted (the paper's Fig. 7(b) "packet drops in the queues").
    pub queue_capacity: usize,
    /// Global cap on per-frame transmissions (Table 1: MAX_ATTEMPTS = 5).
    pub max_attempts_cap: u32,
    /// Prior per-attempt loss before a link has observations.
    pub loss_prior: f64,
    /// EWMA weight of the link estimators.
    pub estimator_alpha: f64,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            queue_capacity: 50,
            max_attempts_cap: 5,
            loss_prior: 0.1,
            estimator_alpha: 0.05,
        }
    }
}

/// Counters the harness reads.
#[derive(Clone, Copy, Debug, Default)]
pub struct MacStats {
    /// Frames accepted into the queue.
    pub enqueued: u64,
    /// Frames dropped on arrival because the queue was full.
    pub queue_drops: u64,
    /// Data frames among the queue drops.
    pub queue_drops_data: u64,
    /// Transmission attempts made.
    pub attempts: u64,
    /// Frames delivered to the next hop.
    pub delivered: u64,
    /// Frames dropped after exhausting their attempt budget.
    pub arq_drops: u64,
    /// Owned slots that went idle.
    pub idle_slots: u64,
    /// Owned slots total.
    pub owned_slots: u64,
}

/// Result of one slot's transmission attempt.
#[derive(Debug)]
pub enum SlotOutcome<P> {
    /// Nothing queued; the slot was idle.
    Idle,
    /// The head frame was delivered to its next hop.
    Delivered(Frame<P>),
    /// The attempt failed; the frame remains queued with budget left.
    Retrying,
    /// The attempt failed and the budget is exhausted; frame dropped.
    Exhausted(Frame<P>),
}

/// Per-node MAC state.
#[derive(Clone, Debug)]
pub struct NodeMac<P> {
    cfg: MacConfig,
    queue: VecDeque<Frame<P>>,
    links: HashMap<NodeId, LinkEstimator>,
    avail: AvailRateEstimator,
    stats: MacStats,
}

impl<P> NodeMac<P> {
    /// Create a node's MAC given its slot capacity (pps).
    pub fn new(cfg: MacConfig, capacity_pps: f64) -> Self {
        NodeMac {
            queue: VecDeque::new(),
            links: HashMap::new(),
            avail: AvailRateEstimator::new(capacity_pps, cfg.estimator_alpha),
            cfg,
            stats: MacStats::default(),
        }
    }

    /// Enqueue a frame for transmission. Returns the frame back when the
    /// queue is full (a queue drop, already counted).
    pub fn enqueue(&mut self, frame: Frame<P>) -> Result<(), Frame<P>> {
        if self.queue.len() >= self.cfg.queue_capacity {
            self.stats.queue_drops += 1;
            if frame.kind == crate::frame::FrameKind::Data {
                self.stats.queue_drops_data += 1;
            }
            return Err(frame);
        }
        self.stats.enqueued += 1;
        self.queue.push_back(frame);
        Ok(())
    }

    /// The frame that would transmit in the next owned slot.
    pub fn head(&self) -> Option<&Frame<P>> {
        self.queue.front()
    }

    /// Mutable head access (hooks stamp headers in place).
    pub fn head_mut(&mut self) -> Option<&mut Frame<P>> {
        self.queue.front_mut()
    }

    /// Remove the head frame without transmitting (hook-initiated drop,
    /// e.g. energy budget exhausted).
    pub fn drop_head(&mut self) -> Option<Frame<P>> {
        self.queue.pop_front()
    }

    /// Discard every queued frame (a node crash / power-down loses its
    /// transmit queue). Returns the number of frames lost; the caller
    /// accounts them — they are not MAC congestion drops.
    pub fn flush(&mut self) -> u64 {
        let lost = self.queue.len() as u64;
        self.queue.clear();
        lost
    }

    /// Record that an owned slot began. Call exactly once per owned slot,
    /// before any transmission; `will_transmit` says whether the queue has
    /// a frame to send. Maintains the idle-slot statistics that drive the
    /// available-rate estimate.
    pub fn record_owned_slot(&mut self, will_transmit: bool) {
        self.stats.owned_slots += 1;
        if !will_transmit {
            self.stats.idle_slots += 1;
        }
        self.avail.record_slot(!will_transmit);
    }

    /// Apply the sampled channel outcome of the head frame's transmission
    /// attempt. The assembly layer must have sampled `success` from its
    /// channel model and charged energy already.
    ///
    /// # Panics
    /// Panics if the queue is empty — callers must only invoke this after
    /// a non-idle [`NodeMac::record_owned_slot`].
    pub fn transmit_result(&mut self, success: bool) -> SlotOutcome<P> {
        let head = self
            .queue
            .front_mut()
            .expect("transmit_result on empty queue");
        head.attempts += 1;
        self.stats.attempts += 1;
        let dst = head.dst;
        let attempts = head.attempts;
        let budget = head.max_attempts.min(self.cfg.max_attempts_cap).max(1);
        self.link_mut(dst).record_attempt(success);
        if success {
            self.link_mut(dst).record_delivery_attempts(attempts);
            self.stats.delivered += 1;
            let frame = self.queue.pop_front().expect("head exists");
            SlotOutcome::Delivered(frame)
        } else if attempts >= budget {
            self.stats.arq_drops += 1;
            let frame = self.queue.pop_front().expect("head exists");
            SlotOutcome::Exhausted(frame)
        } else {
            SlotOutcome::Retrying
        }
    }

    fn link_mut(&mut self, neighbor: NodeId) -> &mut LinkEstimator {
        let (prior, alpha) = (self.cfg.loss_prior, self.cfg.estimator_alpha);
        self.links
            .entry(neighbor)
            .or_insert_with(|| LinkEstimator::new(prior, alpha))
    }

    /// Current loss estimate toward a neighbour.
    pub fn loss_rate(&self, neighbor: NodeId) -> f64 {
        self.links
            .get(&neighbor)
            .map(|l| l.loss_rate())
            .unwrap_or(self.cfg.loss_prior)
    }

    /// Current average attempts per delivered frame toward a neighbour.
    pub fn avg_attempts(&self, neighbor: NodeId) -> f64 {
        self.links
            .get(&neighbor)
            .map(|l| l.avg_attempts())
            .unwrap_or(1.0)
    }

    /// Currently available transmission rate (pps, idle-slot statistic).
    pub fn available_pps(&self) -> f64 {
        self.avail.available_pps()
    }

    /// This node's raw slot capacity (pps).
    pub fn capacity_pps(&self) -> f64 {
        self.avail.capacity_pps()
    }

    /// Frames currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// The global attempt cap (Table 1's MAX_ATTEMPTS).
    pub fn max_attempts_cap(&self) -> u32 {
        self.cfg.max_attempts_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    fn frame(dst: u32) -> Frame<u32> {
        Frame::new(NodeId(0), NodeId(dst), FrameKind::Data, 828, 7)
    }

    fn mac() -> NodeMac<u32> {
        NodeMac::new(MacConfig::default(), 5.0)
    }

    #[test]
    fn delivery_on_success() {
        let mut m = mac();
        m.enqueue(frame(1)).unwrap();
        m.record_owned_slot(true);
        match m.transmit_result(true) {
            SlotOutcome::Delivered(f) => assert_eq!(f.attempts, 1),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(m.queue_len(), 0);
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn retry_until_budget_then_drop() {
        let mut m = mac();
        let mut f = frame(1);
        f.max_attempts = 3;
        m.enqueue(f).unwrap();
        m.record_owned_slot(true);
        assert!(matches!(m.transmit_result(false), SlotOutcome::Retrying));
        m.record_owned_slot(true);
        assert!(matches!(m.transmit_result(false), SlotOutcome::Retrying));
        m.record_owned_slot(true);
        match m.transmit_result(false) {
            SlotOutcome::Exhausted(f) => assert_eq!(f.attempts, 3),
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(m.stats().arq_drops, 1);
        assert_eq!(m.stats().attempts, 3);
    }

    #[test]
    fn budget_is_capped_globally() {
        let mut m = mac();
        let mut f = frame(1);
        f.max_attempts = 100; // hook asked for more than the MAC allows
        m.enqueue(f).unwrap();
        for _ in 0..4 {
            m.record_owned_slot(true);
            assert!(matches!(m.transmit_result(false), SlotOutcome::Retrying));
        }
        m.record_owned_slot(true);
        assert!(matches!(
            m.transmit_result(false),
            SlotOutcome::Exhausted(_)
        ));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut m: NodeMac<u32> = NodeMac::new(
            MacConfig {
                queue_capacity: 2,
                ..Default::default()
            },
            5.0,
        );
        assert!(m.enqueue(frame(1)).is_ok());
        assert!(m.enqueue(frame(1)).is_ok());
        assert!(m.enqueue(frame(1)).is_err());
        assert_eq!(m.stats().queue_drops, 1);
        assert_eq!(m.queue_len(), 2);
    }

    #[test]
    fn idle_slots_raise_available_rate() {
        let mut m = mac();
        for _ in 0..50 {
            m.record_owned_slot(false);
        }
        assert!((m.available_pps() - 5.0).abs() < 0.5);
        assert_eq!(m.stats().idle_slots, 50);
    }

    #[test]
    fn busy_slots_lower_available_rate() {
        let mut m = mac();
        for _ in 0..100 {
            m.enqueue(frame(1)).unwrap();
            m.record_owned_slot(true);
            let _ = m.transmit_result(true);
        }
        assert!(m.available_pps() < 0.2, "{}", m.available_pps());
    }

    #[test]
    fn loss_estimator_wired_per_neighbor() {
        let mut m = mac();
        // Neighbor 1 lossy, neighbor 2 clean.
        for _ in 0..50 {
            let mut f = frame(1);
            f.max_attempts = 1;
            m.enqueue(f).unwrap();
            m.record_owned_slot(true);
            let _ = m.transmit_result(false);
            m.enqueue(frame(2)).unwrap();
            m.record_owned_slot(true);
            let _ = m.transmit_result(true);
        }
        assert!(m.loss_rate(NodeId(1)) > 0.8);
        assert!(m.loss_rate(NodeId(2)) < 0.1);
        assert_eq!(m.loss_rate(NodeId(9)), 0.1, "prior for unknown link");
    }

    #[test]
    fn head_manipulation() {
        let mut m = mac();
        m.enqueue(frame(1)).unwrap();
        m.enqueue(frame(2)).unwrap();
        assert_eq!(m.head().unwrap().dst, NodeId(1));
        m.head_mut().unwrap().max_attempts = 4;
        let dropped = m.drop_head().unwrap();
        assert_eq!(dropped.max_attempts, 4);
        assert_eq!(m.head().unwrap().dst, NodeId(2));
    }

    #[test]
    #[should_panic(expected = "transmit_result on empty queue")]
    fn transmit_on_empty_panics() {
        let mut m = mac();
        m.transmit_result(true);
    }
}
