//! Duty-cycled sleep schedules over TDMA frames.
//!
//! JAVeLEN's TDMA already lets radios power down outside scheduled slots;
//! a duty cycle goes further: a node *sleeps whole frames* — it still
//! wakes for its own slot (transmission is never blocked), but during a
//! sleep frame it does not listen, so frames addressed to it fail at the
//! link and the sender's ARQ pays for the rendezvous miss. The trade is
//! the classic sensor-network one: baseline listening energy against
//! latency and per-hop attempts.
//!
//! The schedule is a pure function of `(node, frame_index)` — no RNG, no
//! state — so the assembly layer can evaluate it identically on the
//! idle-slot-skipping fast path, in bulk replays and in the naive
//! slot-per-event engine.

use jtp_sim::NodeId;

/// Duty-cycle parameters: a node is awake for `awake_frames` out of every
/// `period_frames`, with its phase staggered by node id so neighbours
/// overlap rather than the whole network sleeping in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct DutyCycleConfig {
    /// Cycle length in TDMA frames.
    pub period_frames: u64,
    /// Awake (listening) frames per cycle, `1 ..= period_frames`.
    pub awake_frames: u64,
}

impl DutyCycleConfig {
    /// A 50 % duty cycle with a 4-frame period.
    pub fn half() -> Self {
        DutyCycleConfig {
            period_frames: 4,
            awake_frames: 2,
        }
    }

    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.period_frames == 0 {
            return Err("duty cycle period must be at least one frame".into());
        }
        if self.awake_frames == 0 || self.awake_frames > self.period_frames {
            return Err(format!(
                "duty cycle awake frames must be in 1..={}",
                self.period_frames
            ));
        }
        Ok(())
    }

    /// Fraction of frames spent awake.
    pub fn awake_fraction(&self) -> f64 {
        self.awake_frames as f64 / self.period_frames as f64
    }
}

/// An evaluable sleep schedule (see the module docs for semantics).
#[derive(Clone, Copy, Debug)]
pub struct SleepSchedule {
    cfg: DutyCycleConfig,
}

impl SleepSchedule {
    /// Build from validated parameters.
    ///
    /// # Panics
    /// Panics on invalid parameters (validate the config first).
    pub fn new(cfg: DutyCycleConfig) -> Self {
        cfg.validate().expect("invalid duty cycle");
        SleepSchedule { cfg }
    }

    /// The parameters this schedule runs.
    pub fn config(&self) -> DutyCycleConfig {
        self.cfg
    }

    /// Is `node` awake (listening) during TDMA frame `frame`?
    ///
    /// Phase-staggered by node id: node `i` is awake in frames where
    /// `(frame + i) mod period < awake_frames`.
    pub fn awake(&self, node: NodeId, frame: u64) -> bool {
        (frame + node.0 as u64) % self.cfg.period_frames < self.cfg.awake_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        DutyCycleConfig::half().validate().unwrap();
        assert!(DutyCycleConfig {
            period_frames: 0,
            awake_frames: 0,
        }
        .validate()
        .is_err());
        assert!(DutyCycleConfig {
            period_frames: 4,
            awake_frames: 0,
        }
        .validate()
        .is_err());
        assert!(DutyCycleConfig {
            period_frames: 4,
            awake_frames: 5,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn awake_fraction_matches_long_run_average() {
        let s = SleepSchedule::new(DutyCycleConfig {
            period_frames: 5,
            awake_frames: 2,
        });
        for node in 0..4u32 {
            let awake = (0..1000u64).filter(|&f| s.awake(NodeId(node), f)).count();
            assert_eq!(awake, 400, "node {node}: exactly 2 of every 5 frames");
        }
    }

    #[test]
    fn phases_are_staggered_by_node() {
        let s = SleepSchedule::new(DutyCycleConfig::half());
        // With period 4 / awake 2, nodes 0 and 2 are exact complements.
        for f in 0..40u64 {
            assert_eq!(s.awake(NodeId(0), f), !s.awake(NodeId(2), f));
        }
        // And in every frame *some* node is awake.
        for f in 0..40u64 {
            assert!((0..4u32).any(|n| s.awake(NodeId(n), f)));
        }
    }

    #[test]
    fn always_awake_degenerate() {
        let s = SleepSchedule::new(DutyCycleConfig {
            period_frames: 1,
            awake_frames: 1,
        });
        assert!((0..100u64).all(|f| s.awake(NodeId(3), f)));
        assert_eq!(s.config().awake_fraction(), 1.0);
    }
}
