//! Property-based tests of the TDMA MAC invariants.

use jtp_mac::{Frame, FrameKind, MacConfig, NodeMac, SlotOutcome, TdmaSchedule};
use jtp_sim::{NodeId, SimDuration};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every frame of every TDMA frame period is owned by exactly one
    /// node, and every node owns exactly one slot per frame.
    #[test]
    fn schedule_is_a_permutation(n in 1u32..40, seed in any::<u64>(), frame in 0u64..1000) {
        let mut s = TdmaSchedule::new(n, SimDuration::from_millis(25), seed);
        let mut owners: Vec<NodeId> =
            (0..n as u64).map(|i| s.owner(frame * n as u64 + i)).collect();
        owners.sort();
        prop_assert_eq!(owners, (0..n).map(NodeId).collect::<Vec<_>>());
    }

    /// The ARQ never exceeds min(frame budget, MAC cap) attempts, and the
    /// frame is always either delivered or dropped by then.
    #[test]
    fn arq_attempt_bound(
        budget in 1u32..12,
        cap in 1u32..8,
        outcomes in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let cfg = MacConfig {
            max_attempts_cap: cap,
            ..Default::default()
        };
        let mut mac: NodeMac<u8> = NodeMac::new(cfg, 5.0);
        let mut frame = Frame::new(NodeId(0), NodeId(1), FrameKind::Data, 828, 0);
        frame.max_attempts = budget;
        mac.enqueue(frame).unwrap();
        let allowed = budget.min(cap).max(1);
        let mut attempts = 0;
        for &ok in &outcomes {
            if mac.head().is_none() {
                break;
            }
            mac.record_owned_slot(true);
            attempts += 1;
            match mac.transmit_result(ok) {
                SlotOutcome::Delivered(f) => {
                    prop_assert!(f.attempts <= allowed);
                    prop_assert!(ok);
                    break;
                }
                SlotOutcome::Exhausted(f) => {
                    prop_assert_eq!(f.attempts, allowed);
                    break;
                }
                SlotOutcome::Retrying => {
                    prop_assert!(attempts < allowed);
                }
                SlotOutcome::Idle => prop_assert!(false, "unexpected idle"),
            }
        }
        prop_assert!(attempts <= allowed as usize as u32);
    }

    /// Queue accounting: enqueued = delivered + dropped + still queued,
    /// and the queue never exceeds its capacity.
    #[test]
    fn queue_conservation(
        capacity in 1usize..20,
        ops in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200),
    ) {
        let cfg = MacConfig {
            queue_capacity: capacity,
            max_attempts_cap: 2,
            ..Default::default()
        };
        let mut mac: NodeMac<u8> = NodeMac::new(cfg, 5.0);
        let mut delivered = 0u64;
        let mut exhausted = 0u64;
        for (enq, ok) in ops {
            if enq {
                let _ = mac.enqueue(Frame::new(NodeId(0), NodeId(1), FrameKind::Data, 100, 0));
            } else if mac.head().is_some() {
                mac.record_owned_slot(true);
                match mac.transmit_result(ok) {
                    SlotOutcome::Delivered(_) => delivered += 1,
                    SlotOutcome::Exhausted(_) => exhausted += 1,
                    _ => {}
                }
            } else {
                mac.record_owned_slot(false);
            }
            prop_assert!(mac.queue_len() <= capacity);
        }
        let st = mac.stats();
        prop_assert_eq!(st.delivered, delivered);
        prop_assert_eq!(st.arq_drops, exhausted);
        prop_assert_eq!(
            st.enqueued,
            delivered + exhausted + mac.queue_len() as u64
        );
        prop_assert_eq!(st.owned_slots, st.idle_slots + st.attempts);
    }

    /// The loss estimate is always a probability and the available rate
    /// never exceeds capacity.
    #[test]
    fn estimates_stay_in_range(
        outcomes in proptest::collection::vec(any::<bool>(), 1..300),
        capacity in 0.5f64..50.0,
    ) {
        let mut mac: NodeMac<u8> = NodeMac::new(MacConfig::default(), capacity);
        for &ok in &outcomes {
            let mut f = Frame::new(NodeId(0), NodeId(1), FrameKind::Data, 100, 0);
            f.max_attempts = 1;
            let _ = mac.enqueue(f);
            if mac.head().is_some() {
                mac.record_owned_slot(true);
                let _ = mac.transmit_result(ok);
            }
            let loss = mac.loss_rate(NodeId(1));
            prop_assert!((0.0..=1.0).contains(&loss));
            prop_assert!(mac.available_pps() <= capacity + 1e-9);
            prop_assert!(mac.avg_attempts(NodeId(1)) >= 1.0);
        }
    }
}
