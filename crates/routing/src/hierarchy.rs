//! Hierarchical cluster routing: the O(k·n) backend that breaks the
//! O(n²) state wall.
//!
//! The exact backend keeps an all-pairs distance table plus a flat
//! next-hop table — n² entries each, and a flood churns O(n) rows. At
//! n = 1000 that is 10⁶ entries per table, the last asymptotic ceiling
//! in the engine. This backend replaces the flat tables with two much
//! smaller structures over a partition of the nodes into **connected
//! clusters**:
//!
//! * per cluster `C`, a **multi-source BFS row** `d_C[v]` — the exact
//!   hop distance from `v` to the nearest member of `C` over the full
//!   graph — plus a derived **toward-row** `toward_C[v]`: the neighbour
//!   of `v` minimising `(d_C, id)`. k rows of n entries each
//!   (k ≈ √n clusters ⇒ O(n^1.5) state instead of O(n²));
//! * per cluster, an **exact intra-cluster table** (distances + next
//!   hops over the cluster's induced subgraph, Σ|C|² entries) and each
//!   member's subgraph eccentricity.
//!
//! Forwarding to a destination in cluster `C` walks `toward_C` while
//! outside `C` and switches to the intra table on entry. `d_C` strictly
//! decreases on every inter-cluster hop and the intra distance strictly
//! decreases inside, so (on a consistent snapshot) routes are provably
//! **loop-free** and **deliver** whenever the exact backend has a route;
//! the detour is bounded: `len ≤ d_exact(s, d) + diam(subgraph(C))`,
//! because the walk reaches *some* member of `C` in `d_C(s) ≤ d_exact(s,
//! d)` hops and then pays at most the cluster diameter. (The netsim
//! equivalence suite asserts this bound and records the measured
//! stretch.) For geodesically convex clusters — grid blocks — subgraph
//! distances equal graph distances, so intra-cluster routes are exactly
//! as long as the exact backend's.
//!
//! **Repair is scoped to what a flood touches**: changed edges screen
//! the k cluster rows by the same exact criteria the flat table uses
//! (`linkstate::row_affected`), flagged rows are repaired in
//! place by the multi-source generalisation of the affected-region
//! passes in `bfs_repair`, toward-rows are entry-patched at the
//! touched nodes, and only clusters containing a changed edge recompute
//! their (small) intra tables. A cluster whose subgraph disconnects —
//! e.g. its interior node died — **splits into connected components**
//! (deterministically, ordered by smallest member; clusters never
//! merge), so the intra-table invariant "members are mutually reachable
//! inside the cluster" always holds and delivery is preserved under
//! arbitrary churn. In the worst case repeated churn degrades the
//! partition toward singletons — which is still lawful (singleton
//! routing *is* exact routing), just larger state.
//!
//! Energy-weighted routing is **not** supported here: weights would need
//! weighted cluster summaries with different lawfulness arguments.
//! netsim rejects `routing_backend = hierarchical` + `energy_routing` at
//! config validation, so [`crate::RoutingBackend::set_node_weights`]
//! with `Some` weights panics.

use crate::bfs_repair::{repair_bfs_row, BfsRepairScratch};
use crate::graph::{Adjacency, UNREACHABLE};
use crate::linkstate::{row_affected, RoutingStats};
use jtp_sim::par::{run_chunked, ParStats};
use jtp_sim::{NodeId, SimDuration, SimTime};
use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

/// How the node set is partitioned into clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterSpec {
    /// Grow connected clusters of about `target` nodes by deterministic
    /// BFS from the smallest unassigned id (`target = 0` means ⌈√n⌉).
    /// Works on any graph; clusters are connected by construction.
    Auto {
        /// Desired cluster size; 0 selects ⌈√n⌉.
        target: usize,
    },
    /// Explicit per-node cluster labels (e.g. grid blocks or the
    /// generator's placement clusters). Labels need not be contiguous;
    /// a label whose induced subgraph is disconnected is split into
    /// components at construction.
    Assignment(Vec<u32>),
}

/// Hierarchy-specific diagnostics (the shared [`RoutingStats`] carries
/// the flood-plane counters; see the field docs for the mapping).
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// Current cluster count k.
    pub clusters: u64,
    /// Size of the largest current cluster.
    pub max_cluster: u64,
    /// Extra clusters created by disconnection splits.
    pub splits: u64,
    /// Intra-cluster table recomputations (each O(|C|²)).
    pub intra_rebuilds: u64,
}

/// One cluster's exact tables over its induced subgraph. Members are
/// mutually reachable inside the subgraph (the split invariant), so
/// every distance and eccentricity is finite.
#[derive(Clone, Debug)]
struct ClusterTables {
    /// Member node ids, ascending.
    members: Vec<NodeId>,
    /// `|C| × |C|` subgraph hop distances, row-major by local index.
    dist: Vec<u16>,
    /// `|C| × |C|` subgraph next hops (global neighbour id + 1, 0 on
    /// the diagonal), same `(distance, id)` tie-break as the exact
    /// backend's table build.
    hop: Vec<u32>,
    /// Each member's eccentricity within the subgraph (the intra half
    /// of the conservative remaining-hops estimate).
    ecc: Vec<u16>,
}

/// One immutable routing snapshot, shared by fresh views through an
/// `Rc` exactly like the exact backend's table shares.
#[derive(Clone, Debug)]
struct Snapshot {
    /// Cluster id per node.
    cluster_of: Vec<u32>,
    /// Index of each node within its cluster's `members`.
    local_idx: Vec<u32>,
    clusters: Vec<Rc<ClusterTables>>,
    /// `dc[c][v]`: exact hop distance from `v` to the nearest member of
    /// cluster `c` (multi-source BFS row over the full graph).
    dc: Vec<Rc<Vec<u16>>>,
    /// `toward[c][v]`: neighbour of `v` minimising `(dc[c], id)`,
    /// encoded id + 1; 0 for members (intra table takes over) and for
    /// nodes with no route to `c`.
    toward: Vec<Rc<Vec<u32>>>,
}

/// A node's possibly stale view: which snapshot it last heard flooded.
#[derive(Clone, Debug)]
struct HView {
    snap: Rc<Snapshot>,
    refreshed_at: SimTime,
}

/// Exact hop distances from the nearest of `sources` (a BFS from the
/// contracted super-source).
fn multi_source_bfs(adj: &Adjacency, sources: &[NodeId]) -> Vec<u16> {
    let mut row = vec![UNREACHABLE; adj.len()];
    let mut queue = VecDeque::with_capacity(sources.len());
    for &s in sources {
        row[s.index()] = 0;
        queue.push_back(s);
    }
    while let Some(x) = queue.pop_front() {
        let d = row[x.index()];
        for &y in adj.neighbors(x) {
            if row[y.index()] == UNREACHABLE {
                row[y.index()] = d + 1;
                queue.push_back(y);
            }
        }
    }
    row
}

/// One toward-row entry: the neighbour of `u` minimising `(dc, id)`
/// (ascending neighbour lists + strict `<` reproduce the exact
/// backend's tie-break), encoded id + 1; 0 for cluster members and
/// unreachable nodes.
fn derive_toward_entry(adj: &Adjacency, dc: &[u16], u: usize) -> u32 {
    if dc[u] == 0 || dc[u] == UNREACHABLE {
        return 0;
    }
    let mut best = UNREACHABLE;
    let mut enc = 0u32;
    for &v in adj.neighbors(NodeId(u as u32)) {
        let d = dc[v.index()];
        if d < best {
            best = d;
            enc = v.0 + 1;
        }
    }
    enc
}

/// A full toward-row for one cluster row `dc`.
fn build_toward_row(adj: &Adjacency, dc: &[u16]) -> Vec<u32> {
    (0..adj.len())
        .map(|u| derive_toward_entry(adj, dc, u))
        .collect()
}

/// Exact tables over the induced subgraph of `members` (sorted
/// ascending). The caller guarantees the subgraph is connected.
fn subgraph_tables(adj: &Adjacency, members: Vec<NodeId>, local_idx: &[u32]) -> ClusterTables {
    let c = members.len();
    let mut dist = vec![UNREACHABLE; c * c];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for li in 0..c {
        let row = &mut dist[li * c..(li + 1) * c];
        row[li] = 0;
        queue.push_back(members[li]);
        while let Some(x) = queue.pop_front() {
            let dx = row[local_idx[x.index()] as usize];
            for &y in adj.neighbors(x) {
                let ly = local_idx[y.index()];
                // `local_idx` is only valid for members of *this*
                // cluster here because the walk never leaves the
                // subgraph: non-members are filtered before lookup.
                if ly != u32::MAX
                    && members.binary_search(&y).is_ok()
                    && row[ly as usize] == UNREACHABLE
                {
                    row[ly as usize] = dx + 1;
                    queue.push_back(y);
                }
            }
        }
    }
    let mut hop = vec![0u32; c * c];
    let mut best = vec![UNREACHABLE; c];
    for li in 0..c {
        best.fill(UNREACHABLE);
        for &v in adj.neighbors(members[li]) {
            if members.binary_search(&v).is_err() {
                continue;
            }
            let lv = local_idx[v.index()] as usize;
            for lj in 0..c {
                if lj == li {
                    continue;
                }
                let d = dist[lv * c + lj];
                if d < best[lj] {
                    best[lj] = d;
                    hop[li * c + lj] = v.0 + 1;
                }
            }
        }
    }
    let ecc = (0..c)
        .map(|li| {
            dist[li * c..(li + 1) * c]
                .iter()
                .copied()
                .filter(|&d| d != UNREACHABLE)
                .max()
                .unwrap_or(0)
        })
        .collect();
    ClusterTables {
        members,
        dist,
        hop,
        ecc,
    }
}

/// Connected components of the induced subgraph of `members` (sorted
/// ascending), ordered by smallest member — the deterministic split
/// order.
fn components_within(adj: &Adjacency, members: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut in_set = vec![false; adj.len()];
    for &m in members {
        in_set[m.index()] = true;
    }
    let mut seen = vec![false; adj.len()];
    let mut comps = Vec::new();
    let mut queue = VecDeque::new();
    for &m in members {
        if seen[m.index()] {
            continue;
        }
        seen[m.index()] = true;
        queue.push_back(m);
        let mut comp = Vec::new();
        while let Some(x) = queue.pop_front() {
            comp.push(x);
            for &y in adj.neighbors(x) {
                if in_set[y.index()] && !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push_back(y);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// The initial partition for `spec`: connected member lists, each
/// sorted ascending, the list of clusters ordered by smallest member.
fn initial_clusters(adj: &Adjacency, spec: &ClusterSpec) -> Vec<Vec<NodeId>> {
    let n = adj.len();
    let mut out = match spec {
        ClusterSpec::Auto { target } => {
            let target = if *target == 0 {
                (n as f64).sqrt().ceil() as usize
            } else {
                *target
            }
            .max(1);
            let mut assigned = vec![false; n];
            let mut groups = Vec::new();
            let mut queue = VecDeque::new();
            for seed in 0..n {
                if assigned[seed] {
                    continue;
                }
                assigned[seed] = true;
                queue.push_back(NodeId(seed as u32));
                let mut group = Vec::new();
                while let Some(x) = queue.pop_front() {
                    group.push(x);
                    if group.len() == target {
                        break;
                    }
                    for &y in adj.neighbors(x) {
                        if !assigned[y.index()] {
                            assigned[y.index()] = true;
                            queue.push_back(y);
                        }
                    }
                }
                // Nodes still queued when the size cap hit go back to
                // the pool for a later seed.
                for leftover in queue.drain(..) {
                    assigned[leftover.index()] = false;
                }
                group.sort_unstable();
                groups.push(group);
            }
            groups
        }
        ClusterSpec::Assignment(labels) => {
            assert_eq!(labels.len(), n, "one cluster label per node");
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&v| (labels[v], v));
            let mut groups: Vec<Vec<NodeId>> = Vec::new();
            for v in order {
                match groups.last_mut() {
                    Some(g) if labels[g[0].index()] == labels[v] => g.push(NodeId(v as u32)),
                    _ => groups.push(vec![NodeId(v as u32)]),
                }
            }
            // Labelled groups may be disconnected: split them up front
            // so the intra-table invariant holds from t = 0.
            groups
                .into_iter()
                .flat_map(|g| components_within(adj, &g))
                .collect()
        }
    };
    out.sort_by_key(|g| g[0]);
    out
}

/// Hierarchical cluster routing backend — see the module docs for the
/// scheme and its lawfulness argument.
#[derive(Clone, Debug)]
pub struct HierarchicalBackend {
    views: Vec<HView>,
    refresh_interval: SimDuration,
    snap: Rc<Snapshot>,
    /// The adjacency the current snapshot reflects, patched forward by
    /// the edge diff on every change (mirrors the exact backend).
    cache_adj: Adjacency,
    stats: RoutingStats,
    hier: HierarchyStats,
    no_route: Cell<u64>,
    workers: usize,
    par: ParStats,
}

impl HierarchicalBackend {
    /// Build over `initial` with every view converged at t = 0, exactly
    /// like the exact backend's warm boot.
    pub fn new(initial: &Adjacency, refresh_interval: SimDuration, spec: &ClusterSpec) -> Self {
        let n = initial.len();
        let member_lists = initial_clusters(initial, spec);
        let mut stats = RoutingStats::default();
        let mut hier = HierarchyStats::default();
        let mut par = ParStats::default();
        let snap = Rc::new(Self::build_snapshot(
            initial,
            member_lists,
            1,
            &mut stats,
            &mut hier,
            &mut par,
        ));
        let views = (0..n)
            .map(|_| HView {
                snap: Rc::clone(&snap),
                refreshed_at: SimTime::ZERO,
            })
            .collect();
        HierarchicalBackend {
            views,
            refresh_interval,
            snap,
            cache_adj: initial.clone(),
            stats,
            hier,
            no_route: Cell::new(0),
            workers: 1,
            par,
        }
    }

    /// Full snapshot build from member lists: the k multi-source rows
    /// fan out across `workers` chunks of clusters (each row is a pure
    /// function of the adjacency, merged in cluster order — results are
    /// byte-identical for every worker count).
    fn build_snapshot(
        adj: &Adjacency,
        member_lists: Vec<Vec<NodeId>>,
        workers: usize,
        stats: &mut RoutingStats,
        hier: &mut HierarchyStats,
        par: &mut ParStats,
    ) -> Snapshot {
        let n = adj.len();
        let k = member_lists.len();
        let mut cluster_of = vec![u32::MAX; n];
        let mut local_idx = vec![u32::MAX; n];
        for (c, members) in member_lists.iter().enumerate() {
            for (li, &m) in members.iter().enumerate() {
                cluster_of[m.index()] = c as u32;
                local_idx[m.index()] = li as u32;
            }
        }
        let dc: Vec<Rc<Vec<u16>>> = if workers > 1 {
            let chunks = run_chunked(k, workers, |_, range| {
                range
                    .map(|c| multi_source_bfs(adj, &member_lists[c]))
                    .collect::<Vec<_>>()
            });
            par.record_chunks(&chunks);
            chunks
                .into_iter()
                .flat_map(|(rows, _)| rows)
                .map(Rc::new)
                .collect()
        } else {
            member_lists
                .iter()
                .map(|m| Rc::new(multi_source_bfs(adj, m)))
                .collect()
        };
        stats.bfs_run += k as u64;
        let toward = dc
            .iter()
            .map(|row| Rc::new(build_toward_row(adj, row)))
            .collect();
        stats.hop_full_builds += k as u64;
        let clusters: Vec<Rc<ClusterTables>> = member_lists
            .into_iter()
            .map(|members| Rc::new(subgraph_tables(adj, members, &local_idx)))
            .collect();
        hier.intra_rebuilds += k as u64;
        hier.clusters = k as u64;
        hier.max_cluster = clusters
            .iter()
            .map(|c| c.members.len() as u64)
            .max()
            .unwrap_or(0);
        Snapshot {
            cluster_of,
            local_idx,
            clusters,
            dc,
            toward,
        }
    }

    /// Bring the shared snapshot up to date with `ground_truth`:
    /// screen + repair the k cluster rows, entry-patch the toward rows,
    /// recompute intra tables only for clusters a changed edge lands
    /// in, and split clusters whose subgraph disconnected.
    fn ensure_cache(&mut self, ground_truth: &Adjacency) {
        if self.cache_adj == *ground_truth {
            return;
        }
        let n = ground_truth.len();
        let changed = self.cache_adj.diff_edges(ground_truth);
        let removed: Vec<(usize, usize)> = changed
            .iter()
            .filter(|&&(_, _, present)| !present)
            .map(|&(a, b, _)| (a.index(), b.index()))
            .collect();
        let added: Vec<(usize, usize)> = changed
            .iter()
            .filter(|&&(_, _, present)| present)
            .map(|&(a, b, _)| (a.index(), b.index()))
            .collect();
        let mut adj_touched = vec![false; n];
        for &(u, v, _) in &changed {
            adj_touched[u.index()] = true;
            adj_touched[v.index()] = true;
        }
        let mut snap = (*self.snap).clone();
        let old_adj = &self.cache_adj;

        // ---- 1. Screen + repair the k cluster distance rows (the same
        // exact criteria and affected-region passes as the flat table,
        // on k rows instead of n). With workers > 1 the per-row work
        // fans out across cluster chunks; workers return owned rows and
        // the in-order merge below does all `Rc` sharing and statistics,
        // so results are byte-identical for every worker count.
        enum DcOutcome {
            Skipped,
            Clean,
            Changed(Vec<u16>, u64),
        }
        let repair_one = |row: &[u16], scratch: &mut BfsRepairScratch| -> DcOutcome {
            if !row_affected(row, &changed, old_adj, ground_truth, false) {
                return DcOutcome::Skipped;
            }
            let mut r = row.to_vec();
            repair_bfs_row(old_adj, ground_truth, &removed, &added, &mut r, scratch);
            let mut moved = 0u64;
            scratch.drain_dirty(|v| {
                if r[v] != row[v] {
                    moved += 1;
                }
            });
            if moved == 0 {
                DcOutcome::Clean
            } else {
                DcOutcome::Changed(r, moved)
            }
        };
        let k = snap.clusters.len();
        let outcomes: Vec<DcOutcome> = if self.workers > 1 {
            let old_rows: Vec<&[u16]> = snap.dc.iter().map(|r| r.as_slice()).collect();
            let chunks = run_chunked(k, self.workers, |_, range| {
                let mut scratch = BfsRepairScratch::new(n);
                range
                    .map(|c| repair_one(old_rows[c], &mut scratch))
                    .collect::<Vec<_>>()
            });
            self.par.record_chunks(&chunks);
            chunks.into_iter().flat_map(|(outs, _)| outs).collect()
        } else {
            let mut scratch = BfsRepairScratch::new(n);
            (0..k)
                .map(|c| repair_one(&snap.dc[c], &mut scratch))
                .collect()
        };
        let mut dc_changed = vec![false; k];
        for (c, out) in outcomes.into_iter().enumerate() {
            match out {
                DcOutcome::Skipped => self.stats.bfs_skipped += 1,
                DcOutcome::Clean => self.stats.bfs_repaired += 1,
                DcOutcome::Changed(r, moved) => {
                    self.stats.bfs_repaired += 1;
                    self.stats.dist_entries_changed += moved;
                    snap.dc[c] = Rc::new(r);
                    dc_changed[c] = true;
                }
            }
        }

        // ---- 2. Intra tables for clusters containing a changed edge;
        // split any cluster whose subgraph disconnected.
        let k_before = snap.clusters.len();
        let mut intra_dirty = vec![false; k_before];
        for &(u, v, _) in &changed {
            let (cu, cv) = (snap.cluster_of[u.index()], snap.cluster_of[v.index()]);
            if cu == cv {
                intra_dirty[cu as usize] = true;
            }
        }
        for (c, &dirty) in intra_dirty.iter().enumerate() {
            if !dirty {
                continue;
            }
            let comps = components_within(ground_truth, &snap.clusters[c].members);
            if comps.len() == 1 {
                // Still connected: only the (small) intra tables need
                // recomputing; the repaired distance row stays valid.
                let comp = comps.into_iter().next().expect("one component");
                snap.clusters[c] = Rc::new(subgraph_tables(ground_truth, comp, &snap.local_idx));
                self.hier.intra_rebuilds += 1;
                continue;
            }
            self.hier.splits += comps.len() as u64 - 1;
            for (i, comp) in comps.into_iter().enumerate() {
                // The component with the smallest member keeps the
                // cluster id; the rest are appended (ids stay stable for
                // every untouched cluster, and clusters never merge).
                // Every component's source set differs from the old
                // member set, so each gets a fresh multi-source row —
                // a repair of the old row has the wrong sources.
                let id = if i == 0 {
                    c
                } else {
                    snap.clusters.push(Rc::clone(&snap.clusters[c]));
                    snap.dc.push(Rc::clone(&snap.dc[c]));
                    snap.toward.push(Rc::clone(&snap.toward[c]));
                    dc_changed.push(true);
                    snap.clusters.len() - 1
                };
                for (li, &m) in comp.iter().enumerate() {
                    snap.cluster_of[m.index()] = id as u32;
                    snap.local_idx[m.index()] = li as u32;
                }
                snap.dc[id] = Rc::new(multi_source_bfs(ground_truth, &comp));
                self.stats.bfs_run += 1;
                dc_changed[id] = true;
                snap.clusters[id] = Rc::new(subgraph_tables(ground_truth, comp, &snap.local_idx));
                self.hier.intra_rebuilds += 1;
            }
        }

        // ---- 3. Toward rows: full rebuild where the distance row
        // changed, entry patches at adjacency-touched nodes elsewhere.
        for (c, &row_changed) in dc_changed.iter().enumerate() {
            if row_changed {
                snap.toward[c] = Rc::new(build_toward_row(ground_truth, &snap.dc[c]));
                self.stats.hop_full_builds += 1;
                continue;
            }
            let mut patched: Vec<(usize, u32)> = Vec::new();
            for &(u, v, _) in &changed {
                for x in [u.index(), v.index()] {
                    let enc = derive_toward_entry(ground_truth, &snap.dc[c], x);
                    if enc != snap.toward[c][x] {
                        patched.push((x, enc));
                    }
                }
            }
            if !patched.is_empty() {
                let mut row = (*snap.toward[c]).clone();
                for (x, enc) in patched {
                    row[x] = enc;
                }
                snap.toward[c] = Rc::new(row);
                self.stats.hop_incremental_builds += 1;
            }
        }

        for &(a, b, present) in &changed {
            self.cache_adj.set_edge(a, b, present);
        }
        debug_assert!(self.cache_adj == *ground_truth, "diff patch drifted");
        self.hier.clusters = snap.clusters.len() as u64;
        self.hier.max_cluster = snap
            .clusters
            .iter()
            .map(|c| c.members.len() as u64)
            .max()
            .unwrap_or(0);
        self.snap = Rc::new(snap);
    }

    /// Hierarchy diagnostics (cluster count, splits, intra rebuilds).
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        self.hier
    }

    /// `v`'s cluster id in the current snapshot (tests use this to tell
    /// intra- from inter-cluster pairs).
    pub fn cluster_id(&self, v: NodeId) -> u32 {
        self.snap.cluster_of[v.index()]
    }

    /// The destination-side detour bound for `v` in the current
    /// snapshot: the diameter of `v`'s cluster's induced subgraph (max
    /// member eccentricity). Hierarchical walk length is bounded by
    /// `d_exact(s, d) + cluster_diameter(d)` — the stretch bound the
    /// equivalence suite asserts and the bench records.
    pub fn cluster_diameter(&self, v: NodeId) -> u32 {
        let ct = &self.snap.clusters[self.snap.cluster_of[v.index()] as usize];
        ct.ecc.iter().copied().max().unwrap_or(0) as u32
    }

    /// The current snapshot's conservative route-length estimate from
    /// `from` to `dst` (not the per-view one): exact subgraph distance
    /// inside a cluster, `d_C(from) + ecc(dst)` across clusters. An
    /// upper bound on the hops a consistent-snapshot walk takes.
    pub fn converged_distance(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        Self::estimate(&self.snap, from, dst)
    }

    fn estimate(snap: &Snapshot, from: NodeId, dst: NodeId) -> Option<u32> {
        if from == dst {
            return Some(0);
        }
        let c = snap.cluster_of[dst.index()] as usize;
        let ct = &snap.clusters[c];
        let lj = snap.local_idx[dst.index()] as usize;
        if snap.cluster_of[from.index()] as usize == c {
            let li = snap.local_idx[from.index()] as usize;
            let d = ct.dist[li * ct.members.len() + lj];
            return (d != UNREACHABLE).then_some(d as u32);
        }
        let d = snap.dc[c][from.index()];
        (d != UNREACHABLE).then_some(d as u32 + ct.ecc[lj] as u32)
    }
}

impl HierarchicalBackend {
    pub(crate) fn len_impl(&self) -> usize {
        self.views.len()
    }

    pub(crate) fn set_workers_impl(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    pub(crate) fn parallel_stats_impl(&self) -> ParStats {
        self.par
    }

    pub(crate) fn set_node_weights_impl(&mut self, weights: Option<Vec<u16>>) {
        assert!(
            weights.is_none(),
            "hierarchical backend does not support energy-weighted routing \
             (config validation rejects the combination)"
        );
    }

    pub(crate) fn refresh_due_views_impl(&mut self, now: SimTime, ground_truth: &Adjacency) {
        if self
            .views
            .iter()
            .all(|v| now.since(v.refreshed_at) < self.refresh_interval)
        {
            return;
        }
        self.ensure_cache(ground_truth);
        for view in &mut self.views {
            if now.since(view.refreshed_at) < self.refresh_interval {
                continue;
            }
            if !Rc::ptr_eq(&view.snap, &self.snap) {
                view.snap = Rc::clone(&self.snap);
                self.stats.refreshes += 1;
            }
            view.refreshed_at = now;
        }
    }

    pub(crate) fn force_refresh_impl(&mut self, node: NodeId, now: SimTime, truth: &Adjacency) {
        self.ensure_cache(truth);
        let view = &mut self.views[node.index()];
        view.snap = Rc::clone(&self.snap);
        view.refreshed_at = now;
        self.stats.refreshes += 1;
    }

    pub(crate) fn force_refresh_all_impl(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.ensure_cache(ground_truth);
        for view in &mut self.views {
            if !Rc::ptr_eq(&view.snap, &self.snap) {
                view.snap = Rc::clone(&self.snap);
                self.stats.refreshes += 1;
            }
            view.refreshed_at = now;
        }
    }

    pub(crate) fn next_hop_impl(&self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        if from == dst {
            return None;
        }
        let snap = &self.views[from.index()].snap;
        let c = snap.cluster_of[dst.index()] as usize;
        let enc = if snap.cluster_of[from.index()] as usize == c {
            let ct = &snap.clusters[c];
            let (li, lj) = (
                snap.local_idx[from.index()] as usize,
                snap.local_idx[dst.index()] as usize,
            );
            ct.hop[li * ct.members.len() + lj]
        } else {
            snap.toward[c][from.index()]
        };
        if enc == 0 {
            self.no_route.set(self.no_route.get() + 1);
            return None;
        }
        Some(NodeId(enc - 1))
    }

    pub(crate) fn remaining_hops_impl(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        Self::estimate(&self.views[from.index()].snap, from, dst)
    }

    pub(crate) fn stats_impl(&self) -> RoutingStats {
        RoutingStats {
            no_route: self.no_route.get(),
            ..self.stats
        }
    }
}
