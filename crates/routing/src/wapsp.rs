//! Incremental node-weighted all-pairs shortest paths.
//!
//! Energy-aware routing re-floods a per-node weight vector on every
//! residual-energy advertisement, and substrate dynamics (churn, battery
//! death, partitions) edit the adjacency underneath it. The historical
//! path rebuilt the whole weighted distance table from scratch on every
//! such change — n × O(n²) selection Dijkstra, O(n³) per advertisement —
//! which is what made 100+-node lifetime runs collapse.
//!
//! [`WeightedApsp`] keeps the table alive across changes and repairs it
//! with a dynamic single-source update per row (Ramalingam–Reps style),
//! split into two exact phases per source:
//!
//! 1. an **increase pass** over the intermediate state (edges removed,
//!    weights raised): candidate nodes are popped in ascending old
//!    distance; a node keeps its old distance iff an *unaffected*
//!    neighbour still supports it (`d[u] + w[x] == d[x]`), otherwise it
//!    joins the affected region, which is then re-settled by a Dijkstra
//!    seeded from its unaffected boundary;
//! 2. a **decrease pass** applying added edges and lowered weights:
//!    a heap seeded with every directly-improved node relaxes outward,
//!    touching only nodes whose distance actually drops.
//!
//! Both phases compute *exact* shortest-path costs, and shortest-path
//! costs are unique values — so the repaired rows are **bit-identical**
//! to a from-scratch rebuild (pinned by tests and by the netsim
//! whole-run equivalence suite), and the flat next-hop table built from
//! them is byte-for-byte the table the legacy rebuild produced. The cost
//! per change is proportional to the affected region instead of n³.
//!
//! Cost model (matches the legacy selection Dijkstra exactly): the cost
//! of a path is the sum of `weights[v]` over every node `v` *entered*
//! along it; the source itself is free. Weights must be ≥ 1.

use crate::graph::Adjacency;
use jtp_sim::par::{run_chunked, run_chunked_mut, ParStats};
use jtp_sim::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost marker for unreachable pairs in weighted distance rows.
pub const UNREACHABLE_COST: u32 = u32::MAX;

/// Work counters for the incremental weighted-APSP maintenance.
#[derive(Clone, Copy, Debug, Default)]
pub struct WapspStats {
    /// Single-source from-scratch Dijkstra runs (initial builds).
    pub full_builds: u64,
    /// Source rows repaired incrementally instead of rebuilt.
    pub repaired_sources: u64,
    /// Nodes whose distance was re-settled across all repairs — the
    /// actual work done; compare with `repaired_sources × n` for the
    /// from-scratch cost it replaced.
    pub resettled: u64,
    /// Distance entries whose value actually changed across all repairs
    /// — exact per-entry dirt (every write is journaled with its
    /// original value and compared at the end of the row's repair), the
    /// true cost a flood's table update propagated downstream.
    pub entries_changed: u64,
}

/// The node-weighted all-pairs distance table, maintained incrementally.
///
/// Row `s` holds, for every destination `d`, the minimum over paths
/// `s → … → d` of the summed weights of entered nodes
/// ([`UNREACHABLE_COST`] when disconnected). Build one with
/// [`WeightedApsp::build`], keep it current with [`WeightedApsp::update`].
#[derive(Clone, Debug)]
pub struct WeightedApsp {
    n: usize,
    rows: Vec<Vec<u32>>,
    weights: Vec<u16>,
    stats: WapspStats,
}

/// Single-source node-weighted Dijkstra into a caller-provided row
/// (binary heap; O(m log n) instead of the legacy O(n²) selection).
fn dijkstra_into(adj: &Adjacency, weights: &[u16], src: usize, row: &mut Vec<u32>) {
    let n = adj.len();
    row.clear();
    row.resize(n, UNREACHABLE_COST);
    row[src] = 0;
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, src as u32)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > row[u as usize] {
            continue;
        }
        for &v in adj.neighbors(NodeId(u)) {
            let cand = d.saturating_add(weights[v.index()] as u32);
            if cand < row[v.index()] {
                row[v.index()] = cand;
                heap.push(Reverse((cand, v.0)));
            }
        }
    }
}

/// Reusable scratch for one repair worker: the affected/visited marks,
/// the touched log that un-marks them, and the candidate heap. Every
/// field is restored to its clean state at the end of each source's
/// repair, so a fresh scratch and a reused one produce identical rows.
struct RepairScratch {
    affected: Vec<bool>,
    visited: Vec<bool>,
    touched: Vec<usize>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// First-write journal: `(entry, original value)` per written entry
    /// (`logged` dedups), compared at the end of the repair for the
    /// exact changed-entry count.
    logged: Vec<bool>,
    log: Vec<(u32, u32)>,
}

impl RepairScratch {
    fn new(n: usize) -> Self {
        RepairScratch {
            affected: vec![false; n],
            visited: vec![false; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            logged: vec![false; n],
            log: Vec::new(),
        }
    }
}

/// The shared (read-only) inputs of one [`WeightedApsp::update_on`]
/// call, bundled so the per-source repair is a free function usable from
/// both the sequential loop and the worker fan-out.
struct RepairInputs<'a> {
    old_adj: &'a Adjacency,
    new_adj: &'a Adjacency,
    /// Intermediate weights for the increase pass: every weight at its
    /// higher value, so the pass sees increase-type changes only.
    w_mid: &'a [u32],
    new_weights: &'a [u16],
    raised: &'a [usize],
    lowered: &'a [usize],
    removed: &'a [(usize, usize)],
    added: &'a [(usize, usize)],
}

/// Repair one source row from `(old_adj, old weights)` to
/// `(new_adj, new_weights)` — the two exact phases described in the
/// module docs. Pure in `(inputs, s, row)`: no shared mutable state, no
/// RNG, so fanning sources out across threads is byte-identical to the
/// sequential loop. Returns `(entries changed, nodes re-settled)` —
/// the entry count is exact: every write is journaled with the entry's
/// original value and compared once the repair settles, so writes that
/// restore the old value do not count.
fn repair_row(
    inp: &RepairInputs<'_>,
    s: usize,
    row: &mut [u32],
    scratch: &mut RepairScratch,
) -> (u64, u64) {
    let RepairScratch {
        affected,
        visited,
        touched,
        heap,
        logged,
        log,
    } = scratch;
    let mut resettled = 0u64;
    macro_rules! journal {
        ($idx:expr) => {{
            let i: usize = $idx;
            if !logged[i] {
                logged[i] = true;
                log.push((i as u32, row[i]));
            }
        }};
    }

    // ---- Phase 1: increase pass over (A_mid = old − removed, w_mid). A
    //      neighbour iteration over A_mid is "new-adjacency neighbours
    //      that were also present in the old adjacency" (edge-presence
    //      checks are O(1)).
    //
    // 1a. Identify the affected region: process candidates in ascending
    //     *old* distance; every potential supporter has a strictly
    //     smaller old distance (weights ≥ 1), so its affected/unaffected
    //     status is final when a node is examined.
    heap.clear();
    for &v in inp.raised {
        if v != s && row[v] != UNREACHABLE_COST {
            heap.push(Reverse((row[v], v as u32)));
        }
    }
    for &(a, b) in inp.removed {
        for x in [a, b] {
            if x != s && row[x] != UNREACHABLE_COST {
                heap.push(Reverse((row[x], x as u32)));
            }
        }
    }
    touched.clear();
    while let Some(Reverse((d, x))) = heap.pop() {
        let x = x as usize;
        if visited[x] {
            continue;
        }
        visited[x] = true;
        touched.push(x);
        let supported = inp.new_adj.neighbors(NodeId(x as u32)).iter().any(|&u| {
            inp.old_adj.has_edge(NodeId(x as u32), u)
                && !affected[u.index()]
                && row[u.index()] != UNREACHABLE_COST
                && row[u.index()].saturating_add(inp.w_mid[x]) == d
        });
        if supported {
            continue;
        }
        affected[x] = true;
        for &y in inp.new_adj.neighbors(NodeId(x as u32)) {
            let yi = y.index();
            if inp.old_adj.has_edge(NodeId(x as u32), y)
                && !visited[yi]
                && row[yi] != UNREACHABLE_COST
                && row[yi] > d
            {
                heap.push(Reverse((row[yi], y.0)));
            }
        }
    }
    // 1b. Re-settle the affected region: Dijkstra seeded from its
    //     unaffected boundary (whose distances are still exact).
    heap.clear();
    for &x in touched.iter() {
        if !affected[x] {
            continue;
        }
        let mut best = UNREACHABLE_COST;
        for &u in inp.new_adj.neighbors(NodeId(x as u32)) {
            if inp.old_adj.has_edge(NodeId(x as u32), u)
                && !affected[u.index()]
                && row[u.index()] != UNREACHABLE_COST
            {
                best = best.min(row[u.index()].saturating_add(inp.w_mid[x]));
            }
        }
        journal!(x);
        row[x] = best;
        if best != UNREACHABLE_COST {
            heap.push(Reverse((best, x as u32)));
        }
    }
    while let Some(Reverse((d, x))) = heap.pop() {
        let x = x as usize;
        if d > row[x] {
            continue;
        }
        resettled += 1;
        for &y in inp.new_adj.neighbors(NodeId(x as u32)) {
            let yi = y.index();
            if !affected[yi] || !inp.old_adj.has_edge(NodeId(x as u32), y) {
                continue;
            }
            let cand = d.saturating_add(inp.w_mid[yi]);
            if cand < row[yi] {
                journal!(yi);
                row[yi] = cand;
                heap.push(Reverse((cand, y.0)));
            }
        }
    }
    for &x in touched.iter() {
        affected[x] = false;
        visited[x] = false;
    }

    // ---- Phase 2: decrease pass to (new_adj, new_weights): added edges
    //      and lowered weights only improve distances; a seeded
    //      relaxation touches exactly the improved region.
    heap.clear();
    for &v in inp.lowered {
        if v == s {
            continue;
        }
        let mut best = UNREACHABLE_COST;
        for &u in inp.new_adj.neighbors(NodeId(v as u32)) {
            if row[u.index()] != UNREACHABLE_COST {
                best = best.min(row[u.index()].saturating_add(inp.new_weights[v] as u32));
            }
        }
        if best < row[v] {
            journal!(v);
            row[v] = best;
            heap.push(Reverse((best, v as u32)));
        }
    }
    for &(a, b) in inp.added {
        for (x, via) in [(a, b), (b, a)] {
            if x == s || row[via] == UNREACHABLE_COST {
                continue;
            }
            let cand = row[via].saturating_add(inp.new_weights[x] as u32);
            if cand < row[x] {
                journal!(x);
                row[x] = cand;
                heap.push(Reverse((cand, x as u32)));
            }
        }
    }
    while let Some(Reverse((d, x))) = heap.pop() {
        let x = x as usize;
        if d > row[x] {
            continue;
        }
        resettled += 1;
        for &y in inp.new_adj.neighbors(NodeId(x as u32)) {
            let yi = y.index();
            let cand = d.saturating_add(inp.new_weights[yi] as u32);
            if cand < row[yi] {
                journal!(yi);
                row[yi] = cand;
                heap.push(Reverse((cand, y.0)));
            }
        }
    }
    let mut entries = 0u64;
    for &(i, old) in log.iter() {
        let i = i as usize;
        if row[i] != old {
            entries += 1;
        }
        logged[i] = false;
    }
    log.clear();
    (entries, resettled)
}

impl WeightedApsp {
    /// Build the full table from scratch for `(adj, weights)`.
    ///
    /// # Panics
    /// Panics when the weight vector's length disagrees with the node
    /// count (a zero weight would also break the cost model; the
    /// link-state layer rejects those before they reach here).
    pub fn build(adj: &Adjacency, weights: &[u16]) -> Self {
        Self::build_on(adj, weights, 1, &mut ParStats::default())
    }

    /// [`WeightedApsp::build`] with the per-source Dijkstras fanned out
    /// across `workers` chunks (`workers = 1` runs inline). Each source
    /// row is an independent computation, so the merged table and the
    /// work counters are byte-identical for every worker count; the
    /// fan-out's wall-clock accounting lands in `par`.
    ///
    /// # Panics
    /// Panics when the weight vector's length disagrees with the node
    /// count.
    pub fn build_on(adj: &Adjacency, weights: &[u16], workers: usize, par: &mut ParStats) -> Self {
        let n = adj.len();
        assert_eq!(weights.len(), n, "one weight per node");
        let chunks = run_chunked(n, workers, |_, range| {
            range
                .map(|s| {
                    let mut row = Vec::new();
                    dijkstra_into(adj, weights, s, &mut row);
                    row
                })
                .collect::<Vec<_>>()
        });
        par.record_chunks(&chunks);
        let mut rows = Vec::with_capacity(n);
        let mut stats = WapspStats::default();
        for (band, _) in chunks {
            for row in band {
                stats.full_builds += 1;
                rows.push(row);
            }
        }
        WeightedApsp {
            n,
            rows,
            weights: weights.to_vec(),
            stats,
        }
    }

    /// The distance rows (row = source).
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// Work counters.
    pub fn stats(&self) -> WapspStats {
        self.stats
    }

    /// Repair the table from its current `(old_adj, old weights)` state to
    /// `(new_adj, new_weights)`. `edge_diff` must be
    /// `old_adj.diff_edges(new_adj)` — the caller already computes it for
    /// the hop-count table's incremental BFS, so it is passed in rather
    /// than recomputed. Rows end bit-identical to a from-scratch build.
    ///
    /// Returns one flag per source: `true` iff that row changed —
    /// **exact**, not a superset: every write is journaled against the
    /// entry's original value, so writes that restore the old value do
    /// not flag the row. The link-state layer uses this to re-derive
    /// only the next-hop rows whose inputs moved, and the per-entry
    /// count behind it ([`WapspStats::entries_changed`]) is the true
    /// repair cost flood events report.
    ///
    /// # Panics
    /// Panics when node counts disagree with the table.
    pub fn update(
        &mut self,
        old_adj: &Adjacency,
        new_adj: &Adjacency,
        edge_diff: &[(NodeId, NodeId, bool)],
        new_weights: &[u16],
    ) -> Vec<bool> {
        self.update_on(
            old_adj,
            new_adj,
            edge_diff,
            new_weights,
            1,
            &mut ParStats::default(),
        )
    }

    /// [`WeightedApsp::update`] with the per-source repairs fanned out
    /// across `workers` chunks (`workers = 1` runs inline). Each chunk
    /// repairs a disjoint band of rows in place with its own scratch;
    /// the per-source repair is pure and scratch state is restored
    /// between sources, so rows, changed flags and work counters are
    /// byte-identical for every worker count. The fan-out's wall-clock
    /// accounting lands in `par`.
    ///
    /// # Panics
    /// Panics when node counts disagree with the table.
    pub fn update_on(
        &mut self,
        old_adj: &Adjacency,
        new_adj: &Adjacency,
        edge_diff: &[(NodeId, NodeId, bool)],
        new_weights: &[u16],
        workers: usize,
        par: &mut ParStats,
    ) -> Vec<bool> {
        assert_eq!(old_adj.len(), self.n, "old adjacency size mismatch");
        assert_eq!(new_adj.len(), self.n, "new adjacency size mismatch");
        assert_eq!(new_weights.len(), self.n, "one weight per node");
        let old_weights = std::mem::replace(&mut self.weights, new_weights.to_vec());
        let w_mid: Vec<u32> = old_weights
            .iter()
            .zip(new_weights)
            .map(|(&o, &n)| o.max(n) as u32)
            .collect();
        let raised: Vec<usize> = (0..self.n)
            .filter(|&v| (old_weights[v] as u32) < w_mid[v])
            .collect();
        let lowered: Vec<usize> = (0..self.n)
            .filter(|&v| (new_weights[v] as u32) < w_mid[v])
            .collect();
        let removed: Vec<(usize, usize)> = edge_diff
            .iter()
            .filter(|&&(_, _, present)| !present)
            .map(|&(a, b, _)| (a.index(), b.index()))
            .collect();
        let added: Vec<(usize, usize)> = edge_diff
            .iter()
            .filter(|&&(_, _, present)| present)
            .map(|&(a, b, _)| (a.index(), b.index()))
            .collect();
        let mut changed = vec![false; self.n];
        if raised.is_empty() && lowered.is_empty() && removed.is_empty() && added.is_empty() {
            return changed;
        }
        let inp = RepairInputs {
            old_adj,
            new_adj,
            w_mid: &w_mid,
            new_weights,
            raised: &raised,
            lowered: &lowered,
            removed: &removed,
            added: &added,
        };
        let n = self.n;
        let bands = run_chunked_mut(&mut self.rows, workers, |_, range, band| {
            let mut scratch = RepairScratch::new(n);
            let mut out = Vec::with_capacity(band.len());
            for (j, row) in band.iter_mut().enumerate() {
                out.push(repair_row(&inp, range.start + j, row, &mut scratch));
            }
            out
        });
        par.record_chunks(&bands);
        let mut s = 0usize;
        for (band, _) in bands {
            for (entries, resettled) in band {
                self.stats.repaired_sources += 1;
                self.stats.resettled += resettled;
                self.stats.entries_changed += entries;
                changed[s] = entries > 0;
                s += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtp_sim::SimRng;

    /// Reference: the legacy O(n²) selection Dijkstra (the code path the
    /// incremental table replaced), kept as the oracle.
    fn selection_dijkstra(adj: &Adjacency, weights: &[u16], src: usize) -> Vec<u32> {
        let n = adj.len();
        let mut dist = vec![UNREACHABLE_COST; n];
        let mut done = vec![false; n];
        dist[src] = 0;
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (v, &d) in dist.iter().enumerate() {
                if !done[v] && d != UNREACHABLE_COST && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, v));
                }
            }
            let Some((du, u)) = best else { break };
            done[u] = true;
            for &v in adj.neighbors(NodeId(u as u32)) {
                let cand = du.saturating_add(weights[v.index()] as u32);
                if cand < dist[v.index()] {
                    dist[v.index()] = cand;
                }
            }
        }
        dist
    }

    fn assert_matches_scratch(ap: &WeightedApsp, adj: &Adjacency, weights: &[u16], what: &str) {
        for s in 0..adj.len() {
            assert_eq!(
                ap.rows()[s],
                selection_dijkstra(adj, weights, s),
                "{what}: row {s} diverged from from-scratch Dijkstra"
            );
        }
    }

    #[test]
    fn build_matches_selection_dijkstra() {
        let mut adj = Adjacency::linear(7);
        adj.set_edge(NodeId(0), NodeId(4), true);
        adj.set_edge(NodeId(2), NodeId(6), true);
        let w = [1u16, 5, 1, 2, 1, 9, 1];
        let ap = WeightedApsp::build(&adj, &w);
        assert_matches_scratch(&ap, &adj, &w, "fresh build");
    }

    #[test]
    fn weight_raise_and_lower_repair_exactly() {
        let mut adj = Adjacency::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            adj.set_edge(NodeId(u), NodeId(v), true);
        }
        let mut w = vec![1u16; 4];
        let mut ap = WeightedApsp::build(&adj, &w);
        // Raise relay 1: traffic shifts to relay 2.
        w[1] = 8;
        ap.update(&adj, &adj, &[], &w);
        assert_matches_scratch(&ap, &adj, &w, "raise");
        assert_eq!(
            ap.rows()[0][3],
            2,
            "0→2→3 enters nodes 2 and 3 at cost 1 each"
        );
        // Lower it back below relay 2.
        w[1] = 1;
        w[2] = 4;
        ap.update(&adj, &adj, &[], &w);
        assert_matches_scratch(&ap, &adj, &w, "lower+raise mix");
    }

    #[test]
    fn edge_removal_and_addition_repair_exactly() {
        let mut old = Adjacency::linear(6);
        let w = [1u16, 2, 3, 1, 2, 1];
        let mut ap = WeightedApsp::build(&old, &w);
        // Remove a chain edge (disconnects) and add a shortcut.
        let mut new = old.clone();
        new.set_edge(NodeId(2), NodeId(3), false);
        new.set_edge(NodeId(0), NodeId(5), true);
        let diff = old.diff_edges(&new);
        ap.update(&old, &new, &diff, &w);
        assert_matches_scratch(&ap, &new, &w, "remove+add");
        // Heal the removed edge again.
        old = new.clone();
        new.set_edge(NodeId(2), NodeId(3), true);
        let diff = old.diff_edges(&new);
        ap.update(&old, &new, &diff, &w);
        assert_matches_scratch(&ap, &new, &w, "heal");
    }

    /// Randomised churn + energy sequences: every step flips a few edges
    /// and nudges a few weights; the repaired table must stay bit-equal
    /// to a from-scratch rebuild at every step (this is the routing-level
    /// equivalence pin the scale work rides on).
    #[test]
    fn random_churn_and_weight_sequences_match_scratch() {
        let mut rng = SimRng::derive(4242, "wapsp-churn");
        for n in [9usize, 16, 25] {
            let mut adj = Adjacency::linear(n);
            let mut w: Vec<u16> = (0..n).map(|_| 1 + rng.below(8) as u16).collect();
            let mut ap = WeightedApsp::build(&adj, &w);
            for step in 0..60 {
                let mut new = adj.clone();
                for _ in 0..1 + rng.below(3) {
                    let a = rng.below(n);
                    let b = rng.below(n);
                    if a != b {
                        let has = new.has_edge(NodeId(a as u32), NodeId(b as u32));
                        new.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                    }
                }
                for _ in 0..rng.below(4) {
                    let v = rng.below(n);
                    w[v] = 1 + rng.below(32) as u16;
                }
                let diff = adj.diff_edges(&new);
                let before = ap.rows().to_vec();
                let ec_before = ap.stats().entries_changed;
                let changed = ap.update(&adj, &new, &diff, &w);
                adj = new;
                assert_matches_scratch(&ap, &adj, &w, &format!("n={n} step={step}"));
                // The changed-rows report is exact: a row is flagged iff
                // its values actually moved (the hop-table row rebuild
                // relies on unflagged rows being untouched, and flood
                // events report the per-entry count as true repair cost).
                let mut moved = 0u64;
                for s in 0..n {
                    assert_eq!(
                        changed[s],
                        ap.rows()[s] != before[s],
                        "n={n} step={step}: row {s} flag is not exact"
                    );
                    moved += ap.rows()[s]
                        .iter()
                        .zip(before[s].iter())
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                }
                assert_eq!(
                    ap.stats().entries_changed - ec_before,
                    moved,
                    "n={n} step={step}: entries_changed must count exactly \
                     the entries that moved"
                );
            }
            let st = ap.stats();
            assert!(st.repaired_sources > 0, "repairs must run");
            assert!(
                st.resettled < st.repaired_sources * n as u64,
                "repair must touch less than full rebuilds would (n={n}: \
                 resettled {} over {} source repairs)",
                st.resettled,
                st.repaired_sources
            );
        }
    }

    #[test]
    fn unreachable_components_connect_and_sever() {
        // Two islands; bridge them, then cut the bridge again.
        let mut old = Adjacency::new(6);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            old.set_edge(NodeId(u), NodeId(v), true);
        }
        let w = [1u16, 1, 2, 3, 1, 1];
        let mut ap = WeightedApsp::build(&old, &w);
        assert_eq!(ap.rows()[0][5], UNREACHABLE_COST);
        let mut new = old.clone();
        new.set_edge(NodeId(2), NodeId(3), true);
        ap.update(&old, &new, &old.diff_edges(&new), &w);
        assert_matches_scratch(&ap, &new, &w, "bridge");
        assert_ne!(ap.rows()[0][5], UNREACHABLE_COST);
        let back = old.clone();
        ap.update(&new, &back, &new.diff_edges(&back), &w);
        assert_matches_scratch(&ap, &back, &w, "sever");
        assert_eq!(ap.rows()[0][5], UNREACHABLE_COST);
    }

    #[test]
    fn no_change_is_a_cheap_no_op() {
        let adj = Adjacency::linear(5);
        let w = [1u16, 2, 3, 2, 1];
        let mut ap = WeightedApsp::build(&adj, &w);
        let before = ap.rows().to_vec();
        ap.update(&adj, &adj, &[], &w);
        assert_eq!(ap.rows(), &before[..]);
        assert_eq!(ap.stats().repaired_sources, 0, "no-op must not touch rows");
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn rejects_mismatched_weight_vector() {
        let adj = Adjacency::linear(3);
        WeightedApsp::build(&adj, &[1, 1]);
    }
}
