//! # jtp-routing — link-state routing with possibly stale views
//!
//! The JAVeLEN substrate uses an energy-conserving link-state protocol
//! (Santivanez et al., reference 29 of the paper) that gives each node *"a local,
//! possibly inaccurate, view of the network's topology"*. JTP consumes
//! exactly three things from it:
//!
//! 1. the **next hop** toward a destination,
//! 2. the **remaining path length** `H_i` (drives the per-hop reliability
//!    allocation, eq. 4),
//! 3. approximately **symmetric routes**, so ACKs traverse the caches the
//!    data populated.
//!
//! We reproduce that surface: a ground-truth [`Adjacency`] maintained by
//! the assembly layer, and per-node [`LinkState`] views refreshed every
//! `refresh_interval` — between refreshes a view is *stale*, which under
//! mobility yields exactly the inconsistent topological views the paper's
//! hop-by-hop tolerance update is designed to survive.
//!
//! Next hops minimise `(distance_to_destination, node_id)` — a
//! deterministic tie-break. Forward and reverse paths always have equal
//! length and *usually* coincide (always, on chains and trees); where
//! equal-cost alternatives diverge, JTP's caching degrades gracefully —
//! the design is explicitly opportunistic ("would seize any chance for
//! locally recovering lost packets", §1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod bfs_repair;
pub mod graph;
pub mod hierarchy;
pub mod linkstate;
pub mod wapsp;

pub use backend::{BackendSelect, LinkState, RoutingBackend};
pub use graph::{Adjacency, UNREACHABLE};
pub use hierarchy::{ClusterSpec, HierarchicalBackend, HierarchyStats};
pub use linkstate::{ExactBackend, RoutingStats};
pub use wapsp::{WapspStats, WeightedApsp, UNREACHABLE_COST};
