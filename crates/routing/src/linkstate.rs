//! Per-node topology views and next-hop selection.
//!
//! Performance notes (mobility ticks used to dominate mobile runs; the
//! per-packet `next_hop` scan was the hottest remaining forwarding cost):
//!
//! * all views refreshing to the same ground truth **share** one
//!   `Rc`-owned snapshot and one all-pairs distance table instead of
//!   recomputing BFS-per-source per view (n× less work, n× less memory).
//!   `Rc`, not `Arc`: an `ExactBackend` lives inside one single-threaded
//!   `Network` (batch parallelism is per-replica, each with its own
//!   network), so the share counts need no atomics — they sit on the
//!   per-mobility-tick refresh path. The intra-run fan-outs below keep
//!   this invariant: worker threads read plain `&[u16]` row views and
//!   return owned data, and only the merging main thread touches `Rc`
//!   counts;
//! * with [`ExactBackend::set_workers`] > 1, the per-source recomputations
//!   a flooded advertisement triggers — BFS row screens/repairs,
//!   weighted-APSP repairs, next-hop row rebuilds — are fanned out
//!   across scoped worker threads in contiguous source chunks and merged
//!   in source order. Every per-source computation is a pure function of
//!   the shared read-only inputs, so the merged tables, statistics and
//!   routes are **byte-identical** for every worker count (pinned by
//!   `parallel_workers_match_sequential_under_churn` and the netsim
//!   engine-equivalence suite); the legacy comparison modes stay
//!   sequential because they are the historical cost baseline;
//! * the shared distance table is maintained **incrementally**: when the
//!   ground truth changes, sources are screened by exact criteria on the
//!   changed edges (an added edge `{u,v}` is a shortcut for source `s`
//!   iff `|d(s,u) − d(s,v)| ≥ 2`; a removed tight edge matters iff its
//!   far endpoint loses its last alternate support in `s`'s tree), and a
//!   flagged row is **repaired in place** by the affected-region passes
//!   in the crate-private `bfs_repair` module instead of re-running a
//!   whole BFS.
//!   Unaffected rows are reused as-is (per-row `Rc` shares), which keeps
//!   results bit-identical to a full recompute;
//! * each snapshot also carries a flat **next-hop table** (row-major
//!   `src × dst`, encoded as `neighbour id + 1`, 0 = no route), updated
//!   right after the incremental distance update — only the entries
//!   adjacent to actually-changed distance entries are re-derived (BFS
//!   distances are symmetric, so a changed row is a changed column) —
//!   and shared across views through the same `Rc`.
//!   [`ExactBackend::next_hop`] is therefore a single array load on an
//!   immutable `&self` — the per-packet neighbour scan is gone, and its
//!   tie-break (minimise `(distance, id)`) is baked into the table so
//!   routes are unchanged.
//!
//! **Energy-aware routing** ([`ExactBackend::set_node_weights`]): when
//! per-node forwarding weights are advertised (netsim derives them from
//! residual battery fractions), the next-hop table is built from a
//! node-weighted Dijkstra instead of hop counts — max-min-lifetime style:
//! paths through drained nodes get expensive and traffic shifts to
//! fresher relays. The BFS hop-count table is kept alongside (it feeds
//! the transport's remaining-hops estimate, eq. 4, which must stay a
//! *hop* count), and the hot `next_hop` load is unchanged — only the
//! table build differs. With all weights equal to 1 the weighted
//! distances coincide with hop counts and the table is bit-identical to
//! the hop-count build.

use crate::bfs_repair::{repair_bfs_row, BfsRepairScratch};
use crate::graph::{Adjacency, UNREACHABLE};
use crate::wapsp::{WeightedApsp, UNREACHABLE_COST};
use jtp_sim::par::{run_chunked, run_chunked_mut, ParStats};
use jtp_sim::{NodeId, SimDuration, SimTime};
use std::cell::Cell;
use std::rc::Rc;

/// One source's distance row, individually shared: a refresh that
/// repairs k rows clones k rows and bumps n − k refcounts, instead of
/// deep-copying the whole n × n table (the dominant per-mobility-tick
/// cost before the diffed-tick work).
type DistRow = Rc<Vec<u16>>;
type DistTable = Rc<Vec<DistRow>>;
/// Flat row-major `src × dst` next-hop table: `0` = no route, else
/// `neighbour id + 1`.
type HopTable = Rc<Vec<u32>>;

/// One node's snapshot of the topology: its shortest-path distances and
/// the pre-resolved next-hop table derived from them. (The adjacency
/// itself is not stored — nothing on the per-packet path reads it.)
#[derive(Clone, Debug)]
struct View {
    dist: DistTable,
    hops: HopTable,
    refreshed_at: SimTime,
}

/// Routing diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutingStats {
    /// View refreshes performed across all nodes.
    pub refreshes: u64,
    /// next_hop queries that found no route in the local view.
    pub no_route: u64,
    /// BFS source recomputations skipped by the incremental distance
    /// update (each is one avoided O(V+E) traversal).
    pub bfs_skipped: u64,
    /// Full BFS source recomputations performed (legacy full-row mode).
    pub bfs_run: u64,
    /// BFS rows repaired in place by the affected-region repair (the
    /// default mode; each replaces one full `bfs_run`).
    pub bfs_repaired: u64,
    /// Next-hop tables rebuilt from scratch (O(E·n)).
    pub hop_full_builds: u64,
    /// Next-hop tables updated in place — only the columns whose distance
    /// rows changed (hop-count mode) or the rows whose neighbour inputs
    /// changed (weighted mode) were re-derived.
    pub hop_incremental_builds: u64,
    /// Weighted single-source tables built from scratch (first
    /// advertisement, or every change in legacy full-rebuild mode).
    pub weighted_full_builds: u64,
    /// Weighted source rows repaired incrementally (see
    /// [`crate::wapsp::WeightedApsp`]).
    pub weighted_repairs: u64,
    /// Distance-table entries whose value actually changed across the
    /// incremental repairs — exact per-entry dirt (hop-count deltas plus
    /// [`crate::wapsp::WapspStats::entries_changed`]), the true table
    /// cost a flood propagated. The legacy full-rebuild modes recompute
    /// everything without diffing and report 0 here.
    pub dist_entries_changed: u64,
}

/// The current ground truth, its distances and its next-hop table, shared
/// by fresh views. `adj` is owned and **patched in place** by the edge
/// diff on every change (never cloned from the ground truth — views
/// don't hold it). `weights` records which node-weight advertisement the
/// hop table was built under (None = plain hop counts); `wapsp` carries
/// the live weighted distance table across changes so the next
/// advertisement or topology edit repairs it instead of rebuilding.
#[derive(Clone, Debug)]
struct TruthCache {
    adj: Adjacency,
    dist: DistTable,
    hops: HopTable,
    weights: Option<Vec<u16>>,
    wapsp: Option<WeightedApsp>,
}

/// The one audited next-hop build both tables share: entry
/// `[src·n + dst]` holds the neighbour of `src` minimising
/// `(key(via, dst), id)` encoded as `id + 1`, or 0 when no neighbour
/// reaches `dst` (`key` returns `unreachable`). Neighbour lists are
/// sorted ascending and only a strictly smaller key displaces the
/// incumbent, so the first minimum reproduces the historical `(d, v)`
/// lexicographic tie-break exactly; the incumbent's key is kept in a
/// per-source row buffer rather than re-read through the distance table
/// (this build runs on every flooded refresh, so its constant factor is
/// part of the dynamics path). The key closure monomorphises away —
/// keeping hop-count and weighted builds on this single loop is what
/// guarantees their tie-breaks can never drift apart.
fn build_hop_table_by_key<D: Copy + Ord>(
    adj: &Adjacency,
    unreachable: D,
    key: impl Fn(NodeId, usize) -> D,
) -> Vec<u32> {
    let n = adj.len();
    let mut hops = vec![0u32; n * n];
    let mut best = vec![unreachable; n];
    for src in 0..n {
        build_hop_row_by_key(
            adj,
            src,
            unreachable,
            &key,
            &mut hops[src * n..(src + 1) * n],
            &mut best,
        );
    }
    hops
}

/// One source row of the audited build (see [`build_hop_table_by_key`]):
/// shared verbatim by the full build and the partial rebuilds, so a
/// re-derived row can never drift from a from-scratch one.
fn build_hop_row_by_key<D: Copy + Ord>(
    adj: &Adjacency,
    src: usize,
    unreachable: D,
    key: &impl Fn(NodeId, usize) -> D,
    row: &mut [u32],
    best: &mut [D],
) {
    best.fill(unreachable);
    row.fill(0);
    for &v in adj.neighbors(NodeId(src as u32)) {
        for (dst, slot) in row.iter_mut().enumerate() {
            if dst == src {
                continue;
            }
            let d = key(v, dst);
            // `d < unreachable` for any reachable d, so an empty slot
            // (best = unreachable) accepts the first candidate.
            if d < best[dst] {
                best[dst] = d;
                *slot = v.0 + 1;
            }
        }
    }
}

/// One entry of the audited build, derived standalone: the neighbour of
/// `src` minimising `(key(v, dst), v)` encoded as `v + 1`, 0 when none
/// reaches. Same strict-`<` / ascending-neighbour tie-break as
/// [`build_hop_row_by_key`] (neighbour lists are sorted, only a strictly
/// smaller key displaces the incumbent) — the entry-level patch shares
/// this one derivation, and `partial_tables_match_full_rebuild_under_churn`
/// pins that it can never drift from the buffered row build.
fn derive_hop_entry<D: Copy + Ord>(
    adj: &Adjacency,
    src: usize,
    dst: usize,
    unreachable: D,
    key: &impl Fn(NodeId, usize) -> D,
) -> u32 {
    debug_assert_ne!(src, dst, "diagonal entries are never derived");
    let mut best = unreachable;
    let mut enc = 0u32;
    for &v in adj.neighbors(NodeId(src as u32)) {
        let d = key(v, dst);
        if d < best {
            best = d;
            enc = v.0 + 1;
        }
    }
    enc
}

/// Rebuild the flagged rows of a flat next-hop table across `workers`
/// chunks of sources (fork-join over [`run_chunked_mut`], one fan-out
/// recorded in `par`). Each chunk owns its contiguous band of table rows
/// and its own scratch `best` buffer; every rebuilt row goes through the
/// same [`build_hop_row_by_key`] as the sequential loop, and `best` is
/// refilled per row, so the table is byte-identical for every worker
/// count — `workers == 1` runs inline on the caller's thread.
fn rebuild_rows_chunked<D: Copy + Ord + Send + Sync>(
    hops: &mut [u32],
    adj: &Adjacency,
    unreachable: D,
    key: &(impl Fn(NodeId, usize) -> D + Sync),
    redo: impl Fn(usize) -> bool + Sync,
    workers: usize,
    par: &mut ParStats,
) {
    let n = adj.len();
    debug_assert_eq!(hops.len(), n * n);
    let mut rows: Vec<&mut [u32]> = hops.chunks_mut(n).collect();
    let chunks = run_chunked_mut(&mut rows, workers, |_, range, band| {
        let mut best = vec![unreachable; n];
        for (j, row) in band.iter_mut().enumerate() {
            let src = range.start + j;
            if redo(src) {
                build_hop_row_by_key(adj, src, unreachable, key, row, &mut best);
            }
        }
    });
    par.record_chunks(&chunks);
}

/// The column-patch half of the hop-count incremental rebuild: per
/// changed column, mark the union of the changed entries' neighbourhoods
/// and re-derive exactly those entries. O(Σ deg) over the changed
/// region, not O(E) per column. Runs on the caller's thread — the marked
/// sets are tiny relative to the row rebuilds the fan-out covers.
fn patch_hop_columns<D: Copy + Ord>(
    hops: &mut [u32],
    adj: &Adjacency,
    unreachable: D,
    key: &impl Fn(NodeId, usize) -> D,
    deltas: &[(u32, u32)],
    adj_touched: &[bool],
) {
    let n = adj.len();
    let mut marked = vec![false; n];
    let mut marked_list: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < deltas.len() {
        let dst = deltas[i].0;
        for x in marked_list.drain(..) {
            marked[x] = false;
        }
        while i < deltas.len() && deltas[i].0 == dst {
            let w = NodeId(deltas[i].1);
            for &src in adj.neighbors(w) {
                let si = src.index();
                if !marked[si] && !adj_touched[si] && si != dst as usize {
                    marked[si] = true;
                    marked_list.push(si);
                }
            }
            i += 1;
        }
        let dsti = dst as usize;
        for &src in &marked_list {
            hops[src * n + dsti] = derive_hop_entry(adj, src, dsti, unreachable, key);
        }
    }
}

/// Entry-incremental rebuild of the **hop-count** next-hop table.
///
/// Entry `(src, dst)` reads `dist[v][dst]` for `src`'s neighbours `v` —
/// and BFS hop distances over an undirected graph are symmetric
/// (`dist[v][dst] == dist[dst][v]`), so the entry can only change when
/// `src`'s neighbour set did (those rows are rebuilt whole, fanned out
/// across `workers` chunks), or some neighbour `v` of `src` has
/// `dist[dst][v]` changed. `deltas` lists exactly the changed distance
/// entries as `(row s, entry v)` pairs, grouped by ascending `s` — so
/// for each changed column `dst = s` only the sources adjacent to a
/// changed entry are re-derived, through the same single-entry logic as
/// the full build. The result is byte-identical to [`build_hop_table`]
/// for every worker count (pinned by `hop_table_matches_neighbour_scan`
/// and the partial-vs-full test); the key reads plain `&[u16]` row views
/// so worker threads never touch the `Rc` row shares.
fn rebuild_hop_table_columns(
    prev: &[u32],
    adj: &Adjacency,
    dist: &[DistRow],
    deltas: &[(u32, u32)],
    adj_touched: &[bool],
    workers: usize,
    par: &mut ParStats,
) -> Vec<u32> {
    let views: Vec<&[u16]> = dist.iter().map(|r| r.as_slice()).collect();
    let key = |v: NodeId, dst: usize| views[v.index()][dst];
    let mut hops = prev.to_vec();
    rebuild_rows_chunked(
        &mut hops,
        adj,
        UNREACHABLE,
        &key,
        |s| adj_touched[s],
        workers,
        par,
    );
    patch_hop_columns(&mut hops, adj, UNREACHABLE, &key, deltas, adj_touched);
    hops
}

/// Row-incremental rebuild of the **weighted** next-hop table.
///
/// The weighted key `wdist[v][dst] + weights[v]` is *not* symmetric in
/// `(v, dst)` (node-entry costs exclude the source), so the column trick
/// does not apply; instead, entry `(src, dst)` depends only on `src`'s
/// neighbour set, its neighbours' distance rows and its neighbours'
/// weights — so exactly the rows `src` with a diff-edge endpoint or a
/// neighbour whose wapsp row / weight changed are re-derived (whole) —
/// [`weighted_redo_mask`] flags those rows — and every other row is
/// carried over. Byte-identical to [`build_hop_table_weighted`].
fn rebuild_weighted_hop_rows(
    prev: &[u32],
    adj: &Adjacency,
    wdist: &[Vec<u32>],
    weights: &[u16],
    redo: &[bool],
    workers: usize,
    par: &mut ParStats,
) -> Vec<u32> {
    let mut hops = prev.to_vec();
    let key = |v: NodeId, dst: usize| {
        let d = wdist[v.index()][dst];
        if d == UNREACHABLE_COST {
            UNREACHABLE_COST
        } else {
            d.saturating_add(weights[v.index()] as u32)
        }
    };
    rebuild_rows_chunked(
        &mut hops,
        adj,
        UNREACHABLE_COST,
        &key,
        |s| redo[s],
        workers,
        par,
    );
    hops
}

/// Which weighted next-hop rows must be re-derived: every source touched
/// by the adjacency diff, plus every neighbour of a node whose wapsp row
/// or weight moved (entry `(src, dst)` reads exactly those inputs).
fn weighted_redo_mask(
    adj: &Adjacency,
    adj_touched: &[bool],
    wrow_changed: &[bool],
    weights: &[u16],
    old_weights: &[u16],
) -> Vec<bool> {
    let mut redo = adj_touched.to_vec();
    for v in 0..adj.len() {
        if wrow_changed[v] || weights[v] != old_weights[v] {
            for &u in adj.neighbors(NodeId(v as u32)) {
                redo[u.index()] = true;
            }
        }
    }
    redo
}

/// Hop-count next-hop table: the key is the neighbour's distance to the
/// destination (the uniform `+1` for entering the neighbour cancels out
/// of the comparison).
fn build_hop_table(adj: &Adjacency, dist: &[DistRow], unreachable: u16) -> Vec<u32> {
    build_hop_table_by_key(adj, unreachable, |v, dst| dist[v.index()][dst])
}

/// [`build_hop_table`] with the row loop fanned out across `workers`
/// chunks — byte-identical output (same per-row build), used by the
/// default flood path; the legacy comparison modes keep the sequential
/// build, which is the cost baseline the benchmarks report.
fn build_hop_table_on(
    adj: &Adjacency,
    dist: &[DistRow],
    workers: usize,
    par: &mut ParStats,
) -> Vec<u32> {
    let n = adj.len();
    let views: Vec<&[u16]> = dist.iter().map(|r| r.as_slice()).collect();
    let key = |v: NodeId, dst: usize| views[v.index()][dst];
    let mut hops = vec![0u32; n * n];
    rebuild_rows_chunked(&mut hops, adj, UNREACHABLE, &key, |_| true, workers, par);
    hops
}

/// Weighted next-hop table: the key is the *full* forwarding cost
/// `weights[v] + wdist[v][dst]` (entering `v` costs `weights[v]`, which
/// varies per neighbour — unlike the hop-count build, where the uniform
/// `+1` cancels). Keys are computed on the fly instead of materialising
/// n² cost rows. With all weights equal to 1 every key is `1 + hops`,
/// so the table is bit-identical to the hop-count build.
fn build_hop_table_weighted(adj: &Adjacency, wdist: &[Vec<u32>], weights: &[u16]) -> Vec<u32> {
    build_hop_table_by_key(adj, UNREACHABLE_COST, |v, dst| {
        let d = wdist[v.index()][dst];
        if d == UNREACHABLE_COST {
            UNREACHABLE_COST
        } else {
            d.saturating_add(weights[v.index()] as u32)
        }
    })
}

/// [`build_hop_table_weighted`] with the row loop fanned out across
/// `workers` chunks — byte-identical output; the wapsp rows are plain
/// `Vec<u32>`, so worker threads read them directly.
fn build_hop_table_weighted_on(
    adj: &Adjacency,
    wdist: &[Vec<u32>],
    weights: &[u16],
    workers: usize,
    par: &mut ParStats,
) -> Vec<u32> {
    let n = adj.len();
    let key = |v: NodeId, dst: usize| {
        let d = wdist[v.index()][dst];
        if d == UNREACHABLE_COST {
            UNREACHABLE_COST
        } else {
            d.saturating_add(weights[v.index()] as u32)
        }
    };
    let mut hops = vec![0u32; n * n];
    rebuild_rows_chunked(
        &mut hops,
        adj,
        UNREACHABLE_COST,
        &key,
        |_| true,
        workers,
        par,
    );
    hops
}

/// The affected-source criterion for one BFS row under an edge diff —
/// shared verbatim by the sequential source loop and the parallel
/// fan-out so the two can never disagree on which rows to repair.
///
/// An added edge `{u,v}` is a shortcut for the row's source iff the
/// endpoints sat ≥ 2 levels apart (∞ on one side counts). A removed
/// edge that was not tight (`|du − dv| != 1`) never matters. For a tight
/// removed edge the `legacy` criterion (the historical behaviour, kept
/// for the benchmark comparison) flags every source — on bipartite
/// graphs such as grids that is *all* of them — while the exact
/// criterion flags the source iff the far endpoint `x` loses its last
/// alternate support (no surviving neighbour one level closer); if every
/// removed far endpoint keeps support, no distance in the row can
/// change — induction on ascending distance over the surviving graph.
pub(crate) fn row_affected(
    row: &[u16],
    changed: &[(NodeId, NodeId, bool)],
    old: &Adjacency,
    new: &Adjacency,
    legacy: bool,
) -> bool {
    changed.iter().any(|&(u, v, present)| {
        let (du, dv) = (row[u.index()], row[v.index()]);
        if present {
            match (du == UNREACHABLE, dv == UNREACHABLE) {
                (true, true) => false,
                (true, false) | (false, true) => true,
                (false, false) => du.abs_diff(dv) >= 2,
            }
        } else if du == UNREACHABLE || dv == UNREACHABLE || du.abs_diff(dv) != 1 {
            false
        } else if legacy {
            true
        } else {
            let x = if du > dv { u } else { v };
            let dx = du.max(dv);
            !new.neighbors(x).iter().any(|&w| {
                old.has_edge(x, w) && row[w.index()] != UNREACHABLE && row[w.index()] + 1 == dx
            })
        }
    })
}

/// One source's outcome from the parallel BFS-repair fan-out. Workers
/// return plain owned data; the main thread does every `Rc` share/clone
/// during the in-order merge (distance rows stay `Rc`, not `Arc` — see
/// the module docs).
enum RowRepair {
    /// The affected criterion cleared the row: shared as-is
    /// (`bfs_skipped`).
    Skipped,
    /// Repaired, but every dirty write restored the original value: the
    /// old row is shared (`bfs_repaired`, no deltas).
    Clean,
    /// Repaired with real changes: the new row plus the changed entry
    /// ids in dirty-log drain order (`bfs_repaired`; the merge prefixes
    /// each id with the source to extend the global delta list).
    Changed(Vec<u16>, Vec<u32>),
}

/// Node-weighted single-source shortest paths: the cost of a path is the
/// sum of `weights[v]` over every node `v` entered along it (the source
/// itself is free — its weight taxes *other* nodes routing through it).
/// O(n²) selection Dijkstra.
///
/// This is the **legacy** build (kept verbatim for the
/// `full_weighted_rebuild` comparison mode and as the oracle in tests);
/// the live path maintains a [`WeightedApsp`] incrementally. Distances
/// are unique values, so the two produce bit-identical rows.
fn dijkstra_node_weighted(adj: &Adjacency, weights: &[u16], src: NodeId) -> Vec<u32> {
    let n = adj.len();
    let mut dist = vec![UNREACHABLE_COST; n];
    let mut done = vec![false; n];
    dist[src.index()] = 0;
    loop {
        let mut best: Option<(u32, usize)> = None;
        for (v, &d) in dist.iter().enumerate() {
            if !done[v] && d != UNREACHABLE_COST && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, v));
            }
        }
        let Some((du, u)) = best else { break };
        done[u] = true;
        for &v in adj.neighbors(NodeId(u as u32)) {
            let cand = du.saturating_add(weights[v.index()] as u32);
            if cand < dist[v.index()] {
                dist[v.index()] = cand;
            }
        }
    }
    dist
}

/// The exact flat-table routing backend: one possibly stale snapshot
/// (`View`) per node, refreshed from ground truth every
/// `refresh_interval`, with full all-pairs distance and next-hop tables
/// maintained incrementally. This is the historical `LinkState`
/// machinery verbatim, now one implementor of
/// [`crate::backend::RoutingBackend`] behind the [`crate::LinkState`]
/// facade — the refactor is observationally invisible (goldens, event
/// checksums and statistics are byte-identical).
#[derive(Clone, Debug)]
pub struct ExactBackend {
    views: Vec<View>,
    refresh_interval: SimDuration,
    stats: RoutingStats,
    /// `no_route` lives in a `Cell` so the hot `&self` [`ExactBackend::next_hop`]
    /// can count misses without requiring `&mut self`.
    no_route: Cell<u64>,
    cache: TruthCache,
    /// Currently advertised per-node forwarding weights (energy-aware
    /// routing); None = plain hop-count routing.
    node_weights: Option<Vec<u16>>,
    /// Legacy comparison mode: rebuild the weighted distance table from
    /// scratch (O(n³)) on every change instead of repairing it. Results
    /// are bit-identical either way; only the wall clock differs.
    full_weighted_rebuild: bool,
    /// Legacy comparison mode for the hop tables: re-run a whole BFS per
    /// affected source and rebuild the next-hop table from scratch per
    /// change, instead of the affected-region row repair + the
    /// column/row-incremental next-hop update. Results are bit-identical
    /// either way; only the wall clock differs.
    full_table_rebuild: bool,
    /// Worker threads for the flood-plane fan-outs (BFS row repairs,
    /// weighted-APSP repairs, next-hop row rebuilds). Pure performance
    /// knob: results are byte-identical for every value; 1 (the default)
    /// runs fully inline with no thread spawns.
    workers: usize,
    /// Fan-out wall-clock accounting — perf diagnostics only, never part
    /// of simulation results.
    par: ParStats,
}

impl ExactBackend {
    /// Create with all views initialised from `initial` at t=0 (the
    /// network boots with converged routing, like the paper's warm-up).
    pub fn new(initial: &Adjacency, refresh_interval: SimDuration) -> Self {
        let n = initial.len();
        let dist: DistTable = Rc::new(
            initial
                .all_pairs_distances()
                .into_iter()
                .map(Rc::new)
                .collect(),
        );
        let hops: HopTable = Rc::new(build_hop_table(initial, &dist, UNREACHABLE));
        let views = (0..n)
            .map(|_| View {
                dist: Rc::clone(&dist),
                hops: Rc::clone(&hops),
                refreshed_at: SimTime::ZERO,
            })
            .collect();
        ExactBackend {
            views,
            refresh_interval,
            stats: RoutingStats::default(),
            no_route: Cell::new(0),
            cache: TruthCache {
                adj: initial.clone(),
                dist,
                hops,
                weights: None,
                wapsp: None,
            },
            node_weights: None,
            full_weighted_rebuild: false,
            full_table_rebuild: false,
            workers: 1,
            par: ParStats::default(),
        }
    }

    /// Set the worker-thread count for the flood-plane fan-outs. A pure
    /// performance knob: routes, tables and statistics are byte-identical
    /// for every value (`workers = 1`, the default, runs fully inline).
    /// Values are clamped up to 1; the legacy comparison modes
    /// ([`Self::set_full_table_rebuild`] /
    /// [`Self::set_full_weighted_rebuild`]) always run sequentially —
    /// they exist to reproduce the historical cost baseline.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Fan-out wall-clock accounting (fan-out count, total busy time,
    /// critical-path time) across every flood-plane recomputation since
    /// construction. Perf diagnostics only — never part of simulation
    /// results, which must stay byte-identical across worker counts.
    pub fn parallel_stats(&self) -> ParStats {
        self.par
    }

    /// Select the legacy from-scratch weighted rebuild (true) instead of
    /// the incremental repair (false, the default). Routes are
    /// bit-identical in both modes — this knob exists so benchmarks and
    /// equivalence tests can compare the two code paths.
    pub fn set_full_weighted_rebuild(&mut self, on: bool) {
        self.full_weighted_rebuild = on;
    }

    /// Select the legacy whole-row BFS + from-scratch next-hop-table
    /// builds (true) instead of the affected-region BFS repair and the
    /// column/row-incremental next-hop updates (false, the default).
    /// Routes are bit-identical in both modes — the knob exists so
    /// benchmarks and equivalence tests can compare the code paths.
    pub fn set_full_table_rebuild(&mut self, on: bool) {
        self.full_table_rebuild = on;
    }

    /// Advertise per-node forwarding weights (energy-aware routing), or
    /// None to return to hop-count routing. Weight 1 is a full-energy
    /// node; larger weights tax routes through that node. Views pick the
    /// new tables up on their next (forced or due) refresh — exactly like
    /// a topology advertisement.
    ///
    /// # Panics
    /// Panics when the weight vector's length disagrees with the node
    /// count or any weight is zero (zero-cost relays would make route
    /// costs degenerate).
    pub fn set_node_weights(&mut self, weights: Option<Vec<u16>>) {
        if let Some(w) = &weights {
            assert_eq!(w.len(), self.views.len(), "one weight per node");
            assert!(w.iter().all(|&x| x >= 1), "weights must be >= 1");
        }
        self.node_weights = weights;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when managing zero nodes.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Bring the shared truth cache up to date with `ground_truth` and the
    /// advertised node weights, re-running BFS only from affected sources
    /// and repairing (not rebuilding) the weighted distance table when
    /// weights are set — the energy-re-advertisement path is incremental
    /// end to end (see [`crate::wapsp`]).
    fn ensure_cache(&mut self, ground_truth: &Adjacency) {
        let adj_current = self.cache.adj == *ground_truth;
        if adj_current && self.cache.weights == self.node_weights {
            return;
        }
        let n = ground_truth.len();
        // The legacy comparison mode replicates the historical *cost
        // structure*, not just the historical algorithms: the O(n²)
        // pair-scan diff, deep per-row table clones and a wholesale
        // adjacency clone (below) — so the benchmarked baseline is the
        // engine as it was, byte-identical output either way.
        let changed = if adj_current {
            Vec::new()
        } else if self.full_table_rebuild {
            self.cache.adj.diff_edges_scan(ground_truth)
        } else {
            self.cache.adj.diff_edges(ground_truth)
        };
        // Nodes whose neighbour set changed (their pre-resolved next-hop
        // rows must be re-derived whatever else holds still).
        let mut adj_touched = vec![false; n];
        for &(u, v, _) in &changed {
            adj_touched[u.index()] = true;
            adj_touched[v.index()] = true;
        }
        // Exactly the distance entries that changed, as `(row, entry)`
        // pairs grouped by ascending row — the hop-table rebuild patches
        // only the entries adjacent to these.
        let mut deltas: Vec<(u32, u32)> = Vec::new();
        // Fan-outs engage only on the default incremental path: the
        // legacy comparison modes replicate the historical engine's cost
        // and must stay sequential (they are the baseline the benchmarks
        // report against). `pw` is the worker count every fan-out uses.
        let par_on = self.workers > 1 && !self.full_table_rebuild && !self.full_weighted_rebuild;
        let pw = if par_on { self.workers } else { 1 };
        let dist = if adj_current {
            Rc::clone(&self.cache.dist)
        } else {
            // Repair inputs — only the repair path consumes these; the
            // legacy whole-BFS mode must not pay allocations the
            // historical engine never made (its cost is the baseline the
            // benchmarks report).
            let (removed, added, mut scratch) = if self.full_table_rebuild {
                (Vec::new(), Vec::new(), None)
            } else {
                let removed: Vec<(usize, usize)> = changed
                    .iter()
                    .filter(|&&(_, _, present)| !present)
                    .map(|&(a, b, _)| (a.index(), b.index()))
                    .collect();
                let added: Vec<(usize, usize)> = changed
                    .iter()
                    .filter(|&&(_, _, present)| present)
                    .map(|&(a, b, _)| (a.index(), b.index()))
                    .collect();
                (removed, added, Some(BfsRepairScratch::new(n)))
            };
            let old = &self.cache.adj;
            let old_dist = &self.cache.dist;
            let mut rows: Vec<DistRow> = Vec::with_capacity(n);
            if par_on {
                // Parallel flood plane: fan the per-source screen +
                // affected-region repair out across worker chunks.
                // Workers read plain `&[u16]` views of the old rows and
                // return owned results (no `Rc` crosses a thread); the
                // in-order merge below does all sharing and statistics,
                // so rows, deltas and counters are byte-identical to the
                // sequential loop in the `else` arm.
                let old_rows: Vec<&[u16]> = old_dist.iter().map(|r| r.as_slice()).collect();
                let chunks = run_chunked(n, self.workers, |_, range| {
                    let mut scratch = BfsRepairScratch::new(n);
                    let mut out = Vec::with_capacity(range.len());
                    for s in range {
                        let row = old_rows[s];
                        if !row_affected(row, &changed, old, ground_truth, false) {
                            out.push(RowRepair::Skipped);
                            continue;
                        }
                        let mut r = row.to_vec();
                        repair_bfs_row(old, ground_truth, &removed, &added, &mut r, &mut scratch);
                        let mut moved: Vec<u32> = Vec::new();
                        scratch.drain_dirty(|v| {
                            if r[v] != row[v] {
                                moved.push(v as u32);
                            }
                        });
                        out.push(if moved.is_empty() {
                            RowRepair::Clean
                        } else {
                            RowRepair::Changed(r, moved)
                        });
                    }
                    out
                });
                self.par.record_chunks(&chunks);
                let mut s = 0usize;
                for (outs, _) in chunks {
                    for out in outs {
                        match out {
                            RowRepair::Skipped => {
                                self.stats.bfs_skipped += 1;
                                rows.push(Rc::clone(&old_dist[s]));
                            }
                            RowRepair::Clean => {
                                self.stats.bfs_repaired += 1;
                                rows.push(Rc::clone(&old_dist[s]));
                            }
                            RowRepair::Changed(r, moved) => {
                                self.stats.bfs_repaired += 1;
                                deltas.extend(moved.into_iter().map(|v| (s as u32, v)));
                                rows.push(Rc::new(r));
                            }
                        }
                        s += 1;
                    }
                }
            } else {
                for s in 0..n {
                    let row = &old_dist[s];
                    let affected =
                        row_affected(row, &changed, old, ground_truth, self.full_table_rebuild);
                    if affected {
                        if self.full_table_rebuild {
                            // Legacy mode: a whole BFS per affected source.
                            self.stats.bfs_run += 1;
                            rows.push(Rc::new(ground_truth.bfs_distances(NodeId(s as u32))));
                        } else {
                            // Affected-region repair: increase + decrease
                            // passes touch only the region the diff reaches.
                            self.stats.bfs_repaired += 1;
                            let scratch = scratch.as_mut().expect("repair mode has scratch");
                            let mut r = (**row).clone();
                            repair_bfs_row(old, ground_truth, &removed, &added, &mut r, scratch);
                            // The affected criterion is conservative; an exact
                            // compare over the repair's dirty log (some writes
                            // restore the original value) keeps the next-hop
                            // rebuild proportional to what actually moved,
                            // keeps unmoved rows shared, and records the
                            // changed entries the hop-table patch navigates
                            // by. `deltas` stays grouped by row (the outer
                            // loop ascends); within a row the order is
                            // irrelevant — the patch marks a set and
                            // re-derives each entry exactly.
                            let before = deltas.len();
                            scratch.drain_dirty(|v| {
                                if r[v] != row[v] {
                                    deltas.push((s as u32, v as u32));
                                }
                            });
                            if deltas.len() == before {
                                rows.push(Rc::clone(row));
                            } else {
                                rows.push(Rc::new(r));
                            }
                        }
                    } else if self.full_table_rebuild {
                        // Historical behaviour: unaffected rows were deep-
                        // copied into the fresh table.
                        self.stats.bfs_skipped += 1;
                        rows.push(Rc::new((**row).clone()));
                    } else {
                        // Unaffected rows are shared, not copied: one
                        // refcount bump.
                        self.stats.bfs_skipped += 1;
                        rows.push(Rc::clone(row));
                    }
                }
            }
            Rc::new(rows)
        };
        // `deltas` is the exact hop-count entry dirt of this refresh
        // (only the repair path computes it; legacy whole-BFS rebuilds
        // leave it empty).
        self.stats.dist_entries_changed += deltas.len() as u64;
        // The hop table is derived state: updating it here — once per
        // actual topology/advertisement change, right after the
        // incremental distance update — is what lets `next_hop` stay a
        // pure array load. In the default mode only the columns whose
        // distance rows changed (hop-count keys are symmetric) or the
        // rows whose neighbour inputs changed (weighted keys) are
        // re-derived; the legacy mode rebuilds the table from scratch.
        let n64 = n as u64;
        let (hops, wapsp) = match &self.node_weights {
            None => {
                let hops =
                    if !self.full_table_rebuild && !adj_current && self.cache.weights.is_none() {
                        self.stats.hop_incremental_builds += 1;
                        rebuild_hop_table_columns(
                            &self.cache.hops,
                            ground_truth,
                            &dist,
                            &deltas,
                            &adj_touched,
                            pw,
                            &mut self.par,
                        )
                    } else if par_on {
                        self.stats.hop_full_builds += 1;
                        build_hop_table_on(ground_truth, &dist, self.workers, &mut self.par)
                    } else {
                        self.stats.hop_full_builds += 1;
                        build_hop_table(ground_truth, &dist, UNREACHABLE)
                    };
                (hops, None)
            }
            Some(w) if self.full_weighted_rebuild => {
                // Legacy path, kept runnable for benchmarks: n × O(n²)
                // selection Dijkstra from scratch on every change.
                self.stats.weighted_full_builds += n64;
                self.stats.hop_full_builds += 1;
                let wdist: Vec<Vec<u32>> = (0..n)
                    .map(|s| dijkstra_node_weighted(ground_truth, w, NodeId(s as u32)))
                    .collect();
                (build_hop_table_weighted(ground_truth, &wdist, w), None)
            }
            Some(w) => {
                let (ap, wrow_changed) = match self.cache.wapsp.take() {
                    // The cached table matches (cache.adj, cache.weights):
                    // repair it to (ground_truth, w).
                    Some(mut ap) => {
                        self.stats.weighted_repairs += n64;
                        let ec_before = ap.stats().entries_changed;
                        let ch = ap.update_on(
                            &self.cache.adj,
                            ground_truth,
                            &changed,
                            w,
                            pw,
                            &mut self.par,
                        );
                        self.stats.dist_entries_changed += ap.stats().entries_changed - ec_before;
                        (ap, Some(ch))
                    }
                    // First advertisement since weights were (re)enabled.
                    None => {
                        self.stats.weighted_full_builds += n64;
                        (
                            WeightedApsp::build_on(ground_truth, w, pw, &mut self.par),
                            None,
                        )
                    }
                };
                let hops = match (&wrow_changed, &self.cache.weights) {
                    (Some(ch), Some(old_w)) if !self.full_table_rebuild => {
                        self.stats.hop_incremental_builds += 1;
                        let redo = weighted_redo_mask(ground_truth, &adj_touched, ch, w, old_w);
                        rebuild_weighted_hop_rows(
                            &self.cache.hops,
                            ground_truth,
                            ap.rows(),
                            w,
                            &redo,
                            pw,
                            &mut self.par,
                        )
                    }
                    _ if par_on => {
                        self.stats.hop_full_builds += 1;
                        build_hop_table_weighted_on(
                            ground_truth,
                            ap.rows(),
                            w,
                            self.workers,
                            &mut self.par,
                        )
                    }
                    _ => {
                        self.stats.hop_full_builds += 1;
                        build_hop_table_weighted(ground_truth, ap.rows(), w)
                    }
                };
                (hops, Some(ap))
            }
        };
        // Patch the owned adjacency forward by the diff — O(changed
        // edges), never a clone of the ground truth. (Every old-adjacency
        // consumer — the diff itself, the row repairs, the wapsp update —
        // has already run.) The legacy mode clones wholesale, as the
        // historical engine did.
        if self.full_table_rebuild && !adj_current {
            self.cache.adj = ground_truth.clone();
        } else {
            for &(a, b, present) in &changed {
                self.cache.adj.set_edge(a, b, present);
            }
        }
        debug_assert!(self.cache.adj == *ground_truth, "diff patch drifted");
        self.cache.dist = dist;
        self.cache.hops = Rc::new(hops);
        self.cache.weights = self.node_weights.clone();
        self.cache.wapsp = wapsp;
    }

    /// Refresh every view whose snapshot is older than the refresh
    /// interval. Call whenever ground truth may have changed (the assembly
    /// calls this on mobility updates); cheap when nothing is due.
    pub fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency) {
        if self
            .views
            .iter()
            .all(|v| now.since(v.refreshed_at) < self.refresh_interval)
        {
            return;
        }
        self.ensure_cache(ground_truth);
        for view in &mut self.views {
            if now.since(view.refreshed_at) < self.refresh_interval {
                continue;
            }
            // A view is stale iff it no longer shares the cache's tables
            // (covers both topology changes and weight re-advertisements,
            // which rebuild the hop table under an unchanged adjacency).
            if !Rc::ptr_eq(&view.hops, &self.cache.hops) {
                view.dist = Rc::clone(&self.cache.dist);
                view.hops = Rc::clone(&self.cache.hops);
                self.stats.refreshes += 1;
            }
            // Due views — updated or already accurate — restart the
            // staleness clock.
            view.refreshed_at = now;
        }
    }

    /// Force one node's view up to date (e.g. a node hears a broken-link
    /// advertisement immediately).
    pub fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency) {
        self.ensure_cache(ground_truth);
        let view = &mut self.views[node.index()];
        view.dist = Rc::clone(&self.cache.dist);
        view.hops = Rc::clone(&self.cache.hops);
        view.refreshed_at = now;
        self.stats.refreshes += 1;
    }

    /// Force **every** view up to date immediately — the model for a
    /// flooded topology-change advertisement (node failure/recovery, link
    /// blackout, energy re-advertisement). Views already sharing the
    /// current tables only restart their staleness clock.
    pub fn force_refresh_all(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.ensure_cache(ground_truth);
        for view in &mut self.views {
            if !Rc::ptr_eq(&view.hops, &self.cache.hops) {
                view.dist = Rc::clone(&self.cache.dist);
                view.hops = Rc::clone(&self.cache.hops);
                self.stats.refreshes += 1;
            }
            view.refreshed_at = now;
        }
    }

    /// Next hop from `from` toward `dst` according to **`from`'s own
    /// view**: the neighbour minimising `(distance-to-dst, id)`.
    ///
    /// A single load from the view's pre-resolved hop table (see the
    /// module docs); `&self` so forwarding never needs a mutable borrow
    /// of the routing state.
    pub fn next_hop(&self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        if from == dst {
            return None;
        }
        let n = self.views.len();
        let enc = self.views[from.index()].hops[from.index() * n + dst.index()];
        if enc == 0 {
            self.no_route.set(self.no_route.get() + 1);
            return None;
        }
        Some(NodeId(enc - 1))
    }

    /// Remaining hop count from `from` to `dst` in `from`'s view (the
    /// `H_i` of eq. 4). None if the view has no route.
    pub fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        if from == dst {
            return Some(0);
        }
        let d = self.views[from.index()].dist[from.index()][dst.index()];
        (d != UNREACHABLE).then_some(d as u32)
    }

    /// Exact shortest distance from `from` to `dst` in the shared truth
    /// cache (as of the last completed refresh) — the trait's converged
    /// row access. Per-view staleness does not apply here; equivalence
    /// tests measure hierarchical stretch against this.
    pub fn converged_distance(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        if from == dst {
            return Some(0);
        }
        let d = self.cache.dist[from.index()][dst.index()];
        (d != UNREACHABLE).then_some(d as u32)
    }

    /// Walk the per-hop next-hop decisions from `src` to `dst`; returns
    /// the node sequence, or None if the walk fails or loops (possible
    /// with inconsistent views).
    pub fn trace_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        let limit = self.len() * 2;
        while cur != dst {
            if path.len() > limit {
                return None; // inconsistent views looped the packet
            }
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
        }
        Some(path)
    }

    /// Diagnostics.
    pub fn stats(&self) -> RoutingStats {
        RoutingStats {
            no_route: self.no_route.get(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(n: usize) -> ExactBackend {
        ExactBackend::new(&Adjacency::linear(n), SimDuration::from_secs(5))
    }

    #[test]
    fn chain_routing() {
        let r = ls(5);
        assert_eq!(r.next_hop(NodeId(0), NodeId(4)), Some(NodeId(1)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(4)), Some(NodeId(4)));
        assert_eq!(r.next_hop(NodeId(4), NodeId(0)), Some(NodeId(3)));
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(r.remaining_hops(NodeId(4), NodeId(4)), Some(0));
    }

    #[test]
    fn paths_are_symmetric_on_consistent_views() {
        let mut a = Adjacency::new(6);
        // A small mesh with redundant routes.
        for (u, v) in [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)] {
            a.set_edge(NodeId(u), NodeId(v), true);
        }
        let r = ExactBackend::new(&a, SimDuration::from_secs(5));
        let fwd = r.trace_path(NodeId(0), NodeId(5)).unwrap();
        let mut rev = r.trace_path(NodeId(5), NodeId(0)).unwrap();
        rev.reverse();
        assert_eq!(fwd, rev, "deterministic tie-break => symmetric routes");
    }

    #[test]
    fn stale_view_ignores_topology_change_until_refresh() {
        let mut r = ls(3);
        let mut truth = Adjacency::linear(3);
        truth.set_edge(NodeId(1), NodeId(2), false); // link breaks
                                                     // Immediately after the break, views are stale: still routes via 1.
        r.refresh_due_views(SimTime::from_secs_f64(1.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
        // After the refresh interval the view updates: no route.
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), None);
        assert!(r.stats().no_route > 0);
    }

    #[test]
    fn force_refresh_is_immediate_and_local() {
        let mut r = ls(3);
        let mut truth = Adjacency::linear(3);
        truth.set_edge(NodeId(1), NodeId(2), false);
        r.force_refresh(NodeId(0), SimTime::from_secs_f64(0.1), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), None, "refreshed view");
        assert_eq!(
            r.next_hop(NodeId(1), NodeId(2)),
            Some(NodeId(2)),
            "other views untouched"
        );
    }

    #[test]
    fn next_hop_to_self_is_none() {
        let r = ls(3);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn trace_detects_disconnection() {
        let mut truth = Adjacency::new(4);
        truth.set_edge(NodeId(0), NodeId(1), true);
        truth.set_edge(NodeId(2), NodeId(3), true);
        let r = ExactBackend::new(&truth, SimDuration::from_secs(5));
        assert!(r.trace_path(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn refresh_counts_only_real_changes() {
        let mut r = ls(4);
        let truth = Adjacency::linear(4);
        r.refresh_due_views(SimTime::from_secs_f64(10.0), &truth);
        assert_eq!(r.stats().refreshes, 0, "no change, no refresh work");
        let mut changed = Adjacency::linear(4);
        changed.set_edge(NodeId(0), NodeId(2), true);
        r.refresh_due_views(SimTime::from_secs_f64(20.0), &changed);
        assert_eq!(r.stats().refreshes, 4, "all views pick up the change");
    }

    #[test]
    fn shortcut_is_used_after_refresh() {
        let mut r = ls(4); // 0-1-2-3
        let mut truth = Adjacency::linear(4);
        truth.set_edge(NodeId(0), NodeId(3), true); // direct shortcut
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(3)));
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(3)), Some(1));
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        // Evolve a graph through adds and removes; after every refresh the
        // shared distance table must equal a from-scratch recompute.
        let n = 9;
        let mut truth = Adjacency::linear(n);
        let mut r = ExactBackend::new(&truth, SimDuration::from_secs(1));
        let edits: Vec<(u32, u32, bool)> = vec![
            (0, 5, true),
            (3, 4, false),
            (2, 7, true),
            (0, 5, false),
            (1, 8, true),
            (6, 7, false),
            (3, 4, true),
            (0, 1, false),
        ];
        for (step, (u, v, present)) in edits.into_iter().enumerate() {
            truth.set_edge(NodeId(u), NodeId(v), present);
            let now = SimTime::from_secs_f64(2.0 * (step as f64 + 1.0));
            r.refresh_due_views(now, &truth);
            let expect = truth.all_pairs_distances();
            let got: Vec<Vec<u16>> = r.cache.dist.iter().map(|row| (**row).clone()).collect();
            assert_eq!(got, expect, "divergence after edit {step}");
        }
        let s = r.stats();
        assert!(s.bfs_skipped > 0, "incremental path never skipped a BFS");
        assert!(
            s.bfs_repaired > 0,
            "affected sources must repair their rows"
        );
        assert_eq!(s.bfs_run, 0, "default mode never re-runs a whole BFS");
        assert!(
            s.hop_incremental_builds > 0,
            "hop table must update in place"
        );
    }

    /// The affected-region BFS repair and the column-incremental next-hop
    /// update must be byte-identical to the legacy whole-row BFS +
    /// from-scratch table builds, through random topology churn — the
    /// hop-count half of the mobility tentpole's equivalence pin.
    #[test]
    fn partial_tables_match_full_rebuild_under_churn() {
        use jtp_sim::SimRng;
        let n = 14;
        let mut rng = SimRng::derive(31, "linkstate-partial-churn");
        let mut truth = Adjacency::linear(n);
        truth.set_edge(NodeId(0), NodeId(9), true);
        let mut fast = ExactBackend::new(&truth, SimDuration::from_secs(1));
        let mut legacy = ExactBackend::new(&truth, SimDuration::from_secs(1));
        legacy.set_full_table_rebuild(true);
        for step in 0..60 {
            for _ in 0..1 + rng.below(3) {
                let a = rng.below(n);
                let b = rng.below(n);
                if a != b {
                    let has = truth.has_edge(NodeId(a as u32), NodeId(b as u32));
                    truth.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                }
            }
            let now = SimTime::from_secs_f64(2.0 * (step as f64 + 1.0));
            fast.refresh_due_views(now, &truth);
            legacy.refresh_due_views(now, &truth);
            assert_eq!(
                *fast.cache.dist, *legacy.cache.dist,
                "step {step}: repaired distances diverged from full BFS"
            );
            assert_eq!(
                *fast.cache.hops, *legacy.cache.hops,
                "step {step}: partial hop table diverged from full build"
            );
        }
        let (sf, sl) = (fast.stats(), legacy.stats());
        assert!(sf.bfs_repaired > 0 && sf.bfs_run == 0);
        assert!(sl.bfs_run > 0 && sl.bfs_repaired == 0);
        assert!(sf.hop_incremental_builds > 0);
        assert_eq!(sl.hop_incremental_builds, 0);
    }

    /// The flood-plane fan-out must be byte-identical to the sequential
    /// loop for every worker count — including workers > n — through
    /// interleaved topology churn and weight re-advertisements covering
    /// all four parallelised sites (BFS screen/repair, hop-count column
    /// rebuild, wapsp repair, weighted row rebuild).
    #[test]
    fn parallel_workers_match_sequential_under_churn() {
        use jtp_sim::SimRng;
        let n = 13;
        for workers in [2usize, 3, 8, 64] {
            let mut rng = SimRng::derive(58, "linkstate-par-churn");
            let mut truth = Adjacency::linear(n);
            truth.set_edge(NodeId(0), NodeId(8), true);
            let mut seq = ExactBackend::new(&truth, SimDuration::from_secs(1));
            let mut par = ExactBackend::new(&truth, SimDuration::from_secs(1));
            par.set_workers(workers);
            let mut weights: Option<Vec<u16>> = None;
            for step in 0..50 {
                match step % 5 {
                    // Edge churn under both routing modes.
                    0 | 2 | 3 => {
                        for _ in 0..1 + rng.below(3) {
                            let a = rng.below(n);
                            let b = rng.below(n);
                            if a != b {
                                let has = truth.has_edge(NodeId(a as u32), NodeId(b as u32));
                                truth.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                            }
                        }
                    }
                    // Energy re-advertisement (enables weighted mode).
                    1 => {
                        let w: Vec<u16> = (0..n).map(|_| 1 + rng.below(16) as u16).collect();
                        weights = Some(w);
                    }
                    // Back to hop-count mode.
                    _ => weights = None,
                }
                let now = SimTime::from_secs_f64(2.0 * (step as f64 + 1.0));
                for r in [&mut seq, &mut par] {
                    r.set_node_weights(weights.clone());
                    r.force_refresh_all(now, &truth);
                }
                assert_eq!(
                    *seq.cache.dist, *par.cache.dist,
                    "workers={workers} step {step}: distance tables diverged"
                );
                assert_eq!(
                    *seq.cache.hops, *par.cache.hops,
                    "workers={workers} step {step}: hop tables diverged"
                );
            }
            // Counters are part of the byte-equivalence contract too.
            let (a, b) = (seq.stats(), par.stats());
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "workers={workers}");
            let ws = par.parallel_stats();
            assert!(ws.fanouts > 0, "workers={workers}: fan-outs must engage");
            assert!(ws.busy_ns >= ws.critical_ns);
            assert_eq!(seq.parallel_stats().fanouts, 0, "workers=1 spawns nothing");
        }
    }

    #[test]
    fn fresh_views_share_one_distance_table() {
        let mut r = ls(6);
        let mut truth = Adjacency::linear(6);
        truth.set_edge(NodeId(0), NodeId(5), true);
        r.refresh_due_views(SimTime::from_secs_f64(10.0), &truth);
        for w in r.views.windows(2) {
            assert!(Rc::ptr_eq(&w[0].dist, &w[1].dist), "views must share");
            assert!(Rc::ptr_eq(&w[0].hops, &w[1].hops), "hop table shared");
        }
    }

    /// The cached hop table must agree with the historical neighbour scan
    /// (minimise `(distance, id)`) for every pair, through a sequence of
    /// incremental topology edits.
    #[test]
    fn hop_table_matches_neighbour_scan() {
        let n = 9;
        let mut truth = Adjacency::linear(n);
        let mut r = ExactBackend::new(&truth, SimDuration::from_secs(1));
        let edits: Vec<(u32, u32, bool)> = vec![
            (0, 4, true),
            (2, 3, false),
            (1, 7, true),
            (0, 4, false),
            (5, 8, true),
            (4, 5, false),
        ];
        let mut step = 0;
        loop {
            let dist = truth.all_pairs_distances();
            for s in 0..n as u32 {
                for d in 0..n as u32 {
                    let mut best: Option<(u16, NodeId)> = None;
                    if s != d {
                        for &v in truth.neighbors(NodeId(s)) {
                            let dv = dist[v.index()][d as usize];
                            if dv == UNREACHABLE {
                                continue;
                            }
                            if best.is_none_or(|(bd, bid)| (dv, v) < (bd, bid)) {
                                best = Some((dv, v));
                            }
                        }
                    }
                    assert_eq!(
                        r.next_hop(NodeId(s), NodeId(d)),
                        best.map(|(_, v)| v),
                        "cache disagrees with scan for {s}->{d} at step {step}"
                    );
                }
            }
            let Some(&(u, v, present)) = edits.get(step) else {
                break;
            };
            truth.set_edge(NodeId(u), NodeId(v), present);
            step += 1;
            r.refresh_due_views(SimTime::from_secs_f64(2.0 * step as f64), &truth);
        }
    }

    /// Node churn: failing a cut node severs routes; healing it restores
    /// all-pairs reachability (and identical next hops) after the flooded
    /// refresh.
    #[test]
    fn churn_fail_then_heal_restores_all_pairs_reachability() {
        let n = 7;
        let healthy = Adjacency::linear(n);
        let mut r = ExactBackend::new(&healthy, SimDuration::from_secs(5));
        let before: Vec<Option<NodeId>> = (0..n as u32)
            .flat_map(|s| (0..n as u32).map(move |d| (s, d)))
            .map(|(s, d)| r.next_hop(NodeId(s), NodeId(d)))
            .collect();

        // Node 3 fails: all its edges vanish from the advertised truth.
        let mut failed = healthy.clone();
        failed.set_edge(NodeId(2), NodeId(3), false);
        failed.set_edge(NodeId(3), NodeId(4), false);
        r.force_refresh_all(SimTime::from_secs_f64(10.0), &failed);
        assert_eq!(r.next_hop(NodeId(0), NodeId(6)), None, "cut must sever");
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(6)), None);
        assert!(r.stats().no_route > 0);

        // Node 3 recovers: the healed truth is re-flooded.
        r.force_refresh_all(SimTime::from_secs_f64(20.0), &healthy);
        let after: Vec<Option<NodeId>> = (0..n as u32)
            .flat_map(|s| (0..n as u32).map(move |d| (s, d)))
            .map(|(s, d)| r.next_hop(NodeId(s), NodeId(d)))
            .collect();
        assert_eq!(before, after, "healing must restore identical routes");
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s != d {
                    assert!(
                        r.trace_path(NodeId(s), NodeId(d)).is_some(),
                        "{s}->{d} unreachable after heal"
                    );
                }
            }
        }
    }

    /// A diamond with redundant routes: 0—1—3 and 0—2—3.
    fn diamond() -> Adjacency {
        let mut a = Adjacency::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            a.set_edge(NodeId(u), NodeId(v), true);
        }
        a
    }

    #[test]
    fn unit_weights_reproduce_hop_count_routing() {
        // Energy-aware routing with every node at full energy must be
        // bit-identical to hop-count routing (same distances, same
        // tie-breaks) on an irregular mesh.
        let mut a = Adjacency::linear(7);
        a.set_edge(NodeId(0), NodeId(4), true);
        a.set_edge(NodeId(2), NodeId(6), true);
        let r_hops = ExactBackend::new(&a, SimDuration::from_secs(5));
        let mut r_w = ExactBackend::new(&a, SimDuration::from_secs(5));
        r_w.set_node_weights(Some(vec![1; 7]));
        r_w.force_refresh_all(SimTime::from_secs_f64(0.1), &a);
        for s in 0..7u32 {
            for d in 0..7u32 {
                assert_eq!(
                    r_hops.next_hop(NodeId(s), NodeId(d)),
                    r_w.next_hop(NodeId(s), NodeId(d)),
                    "{s}->{d}"
                );
            }
        }
    }

    #[test]
    fn heavy_weight_steers_route_around_drained_node() {
        let a = diamond();
        let mut r = ExactBackend::new(&a, SimDuration::from_secs(5));
        // Hop-count tie between relays 1 and 2 resolves to the lower id.
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
        // Node 1 is nearly drained: routes shift to relay 2 …
        r.set_node_weights(Some(vec![1, 8, 1, 1]));
        r.force_refresh_all(SimTime::from_secs_f64(1.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(2)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(0)), Some(NodeId(2)));
        // … while the transport's remaining-hops estimate stays a true
        // hop count (eq. 4 must not see inflated "distances").
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(3)), Some(2));
        // Clearing the advertisement restores hop-count routing.
        r.set_node_weights(None);
        r.force_refresh_all(SimTime::from_secs_f64(2.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn weight_change_propagates_on_due_refresh_without_topology_change() {
        let a = diamond();
        let mut r = ExactBackend::new(&a, SimDuration::from_secs(5));
        r.set_node_weights(Some(vec![1, 8, 1, 1]));
        // Inside the refresh interval nothing is due: stale tie-break.
        r.refresh_due_views(SimTime::from_secs_f64(1.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
        // Once due, the re-advertised weights reach every view even
        // though the adjacency never changed.
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(2)));
        assert!(r.stats().refreshes >= 4);
    }

    #[test]
    fn weighted_routing_respects_disconnection() {
        let mut a = diamond();
        let mut r = ExactBackend::new(&a, SimDuration::from_secs(5));
        r.set_node_weights(Some(vec![2, 3, 4, 5]));
        a.set_edge(NodeId(0), NodeId(1), false);
        a.set_edge(NodeId(0), NodeId(2), false);
        r.force_refresh_all(SimTime::from_secs_f64(1.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), None);
        assert_eq!(r.next_hop(NodeId(1), NodeId(3)), Some(NodeId(3)));
    }

    /// The incremental weighted-APSP path must produce byte-identical
    /// next-hop tables to the legacy from-scratch rebuild through an
    /// interleaved sequence of topology churn and weight re-advertisements
    /// — the routing half of the scale tentpole's equivalence pin.
    #[test]
    fn incremental_weighted_path_matches_full_rebuild_under_churn() {
        use jtp_sim::SimRng;
        let n = 12;
        let mut rng = SimRng::derive(77, "linkstate-wapsp-churn");
        let mut truth = Adjacency::linear(n);
        truth.set_edge(NodeId(0), NodeId(7), true);
        truth.set_edge(NodeId(3), NodeId(11), true);
        let mut fast = ExactBackend::new(&truth, SimDuration::from_secs(5));
        let mut legacy = ExactBackend::new(&truth, SimDuration::from_secs(5));
        legacy.set_full_weighted_rebuild(true);
        let mut weights = vec![1u16; n];
        for step in 0..40 {
            // Alternate dynamics kinds: weight nudges (the EnergyAdvert
            // shape) and edge churn (node death / heal shape).
            if step % 3 != 2 {
                for _ in 0..1 + rng.below(3) {
                    let v = rng.below(n);
                    weights[v] = 1 + rng.below(16) as u16;
                }
            } else {
                let a = rng.below(n);
                let b = rng.below(n);
                if a != b {
                    let has = truth.has_edge(NodeId(a as u32), NodeId(b as u32));
                    truth.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                }
            }
            let now = SimTime::from_secs_f64(step as f64 + 1.0);
            for r in [&mut fast, &mut legacy] {
                r.set_node_weights(Some(weights.clone()));
                r.force_refresh_all(now, &truth);
            }
            for s in 0..n as u32 {
                for d in 0..n as u32 {
                    assert_eq!(
                        fast.next_hop(NodeId(s), NodeId(d)),
                        legacy.next_hop(NodeId(s), NodeId(d)),
                        "step {step}: {s}->{d} diverged"
                    );
                }
            }
        }
        let (sf, sl) = (fast.stats(), legacy.stats());
        assert!(sf.weighted_repairs > 0, "incremental path never repaired");
        assert!(
            sf.weighted_full_builds < sl.weighted_full_builds,
            "incremental mode must not rebuild from scratch per change"
        );
        assert!(
            sf.hop_incremental_builds > 0,
            "weighted hop table must be row-updated, not rebuilt"
        );
        assert_eq!(sl.hop_incremental_builds, 0);
    }

    /// Toggling the advertisement off and on drops and rebuilds the
    /// cached weighted table cleanly (the repair must never run against a
    /// stale table from before the hop-count interlude).
    #[test]
    fn weight_toggle_rebuilds_cached_table() {
        let a = diamond();
        let mut r = ExactBackend::new(&a, SimDuration::from_secs(5));
        r.set_node_weights(Some(vec![1, 8, 1, 1]));
        r.force_refresh_all(SimTime::from_secs_f64(1.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(2)));
        r.set_node_weights(None);
        r.force_refresh_all(SimTime::from_secs_f64(2.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
        r.set_node_weights(Some(vec![1, 1, 8, 1]));
        r.force_refresh_all(SimTime::from_secs_f64(3.0), &a);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(1)));
        let s = r.stats();
        assert_eq!(
            s.weighted_full_builds, 8,
            "each (re)enable builds the 4-node table from scratch once"
        );
    }

    #[test]
    fn force_refresh_all_updates_every_view_at_once() {
        let mut r = ls(4);
        let mut truth = Adjacency::linear(4);
        truth.set_edge(NodeId(1), NodeId(2), false);
        // Well inside the refresh interval: a flooded advertisement must
        // still reach every view immediately.
        r.force_refresh_all(SimTime::from_secs_f64(0.5), &truth);
        for s in [0u32, 1] {
            assert_eq!(r.next_hop(NodeId(s), NodeId(3)), None, "view {s} stale");
        }
        assert_eq!(r.stats().refreshes, 4);
    }
}
