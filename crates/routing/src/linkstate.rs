//! Per-node topology views and next-hop selection.

use crate::graph::{Adjacency, UNREACHABLE};
use jtp_sim::{NodeId, SimDuration, SimTime};

/// One node's snapshot of the topology, plus its shortest-path distances.
#[derive(Clone, Debug)]
struct View {
    adj: Adjacency,
    dist: Vec<Vec<u16>>,
    refreshed_at: SimTime,
}

/// Routing diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutingStats {
    /// View refreshes performed across all nodes.
    pub refreshes: u64,
    /// next_hop queries that found no route in the local view.
    pub no_route: u64,
}

/// Link-state routing: one possibly stale snapshot (`View`) per node, refreshed
/// from ground truth every `refresh_interval`.
#[derive(Clone, Debug)]
pub struct LinkState {
    views: Vec<View>,
    refresh_interval: SimDuration,
    stats: RoutingStats,
}

impl LinkState {
    /// Create with all views initialised from `initial` at t=0 (the
    /// network boots with converged routing, like the paper's warm-up).
    pub fn new(initial: &Adjacency, refresh_interval: SimDuration) -> Self {
        let n = initial.len();
        let dist = initial.all_pairs_distances();
        let views = (0..n)
            .map(|_| View {
                adj: initial.clone(),
                dist: dist.clone(),
                refreshed_at: SimTime::ZERO,
            })
            .collect();
        LinkState {
            views,
            refresh_interval,
            stats: RoutingStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when managing zero nodes.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Refresh every view whose snapshot is older than the refresh
    /// interval. Call whenever ground truth may have changed (the assembly
    /// calls this on mobility updates); cheap when nothing is due.
    pub fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency) {
        for view in &mut self.views {
            if now.since(view.refreshed_at) >= self.refresh_interval
                && view.adj != *ground_truth
            {
                view.adj = ground_truth.clone();
                view.dist = ground_truth.all_pairs_distances();
                view.refreshed_at = now;
                self.stats.refreshes += 1;
            } else if now.since(view.refreshed_at) >= self.refresh_interval {
                // Snapshot still accurate: just restart the staleness clock.
                view.refreshed_at = now;
            }
        }
    }

    /// Force one node's view up to date (e.g. a node hears a broken-link
    /// advertisement immediately).
    pub fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency) {
        let view = &mut self.views[node.index()];
        view.adj = ground_truth.clone();
        view.dist = ground_truth.all_pairs_distances();
        view.refreshed_at = now;
        self.stats.refreshes += 1;
    }

    /// Next hop from `from` toward `dst` according to **`from`'s own
    /// view**: the neighbour minimising `(distance-to-dst, id)`.
    pub fn next_hop(&mut self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        if from == dst {
            return None;
        }
        let view = &self.views[from.index()];
        let mut best: Option<(u16, NodeId)> = None;
        for v in view.adj.neighbors(from) {
            let d = view.dist[v.index()][dst.index()];
            if d == UNREACHABLE {
                continue;
            }
            if best.map_or(true, |(bd, bid)| (d, v) < (bd, bid)) {
                best = Some((d, v));
            }
        }
        if best.is_none() {
            self.stats.no_route += 1;
        }
        best.map(|(_, v)| v)
    }

    /// Remaining hop count from `from` to `dst` in `from`'s view (the
    /// `H_i` of eq. 4). None if the view has no route.
    pub fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        if from == dst {
            return Some(0);
        }
        let d = self.views[from.index()].dist[from.index()][dst.index()];
        (d != UNREACHABLE).then_some(d as u32)
    }

    /// Walk the per-hop next-hop decisions from `src` to `dst`; returns
    /// the node sequence, or None if the walk fails or loops (possible
    /// with inconsistent views).
    pub fn trace_path(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        let limit = self.len() * 2;
        while cur != dst {
            if path.len() > limit {
                return None; // inconsistent views looped the packet
            }
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
        }
        Some(path)
    }

    /// Diagnostics.
    pub fn stats(&self) -> RoutingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(n: usize) -> LinkState {
        LinkState::new(&Adjacency::linear(n), SimDuration::from_secs(5))
    }

    #[test]
    fn chain_routing() {
        let mut r = ls(5);
        assert_eq!(r.next_hop(NodeId(0), NodeId(4)), Some(NodeId(1)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(4)), Some(NodeId(4)));
        assert_eq!(r.next_hop(NodeId(4), NodeId(0)), Some(NodeId(3)));
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(r.remaining_hops(NodeId(4), NodeId(4)), Some(0));
    }

    #[test]
    fn paths_are_symmetric_on_consistent_views() {
        let mut a = Adjacency::new(6);
        // A small mesh with redundant routes.
        for (u, v) in [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)] {
            a.set_edge(NodeId(u), NodeId(v), true);
        }
        let mut r = LinkState::new(&a, SimDuration::from_secs(5));
        let fwd = r.trace_path(NodeId(0), NodeId(5)).unwrap();
        let mut rev = r.trace_path(NodeId(5), NodeId(0)).unwrap();
        rev.reverse();
        assert_eq!(fwd, rev, "deterministic tie-break => symmetric routes");
    }

    #[test]
    fn stale_view_ignores_topology_change_until_refresh() {
        let mut r = ls(3);
        let mut truth = Adjacency::linear(3);
        truth.set_edge(NodeId(1), NodeId(2), false); // link breaks
        // Immediately after the break, views are stale: still routes via 1.
        r.refresh_due_views(SimTime::from_secs_f64(1.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
        // After the refresh interval the view updates: no route.
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), None);
        assert!(r.stats().no_route > 0);
    }

    #[test]
    fn force_refresh_is_immediate_and_local() {
        let mut r = ls(3);
        let mut truth = Adjacency::linear(3);
        truth.set_edge(NodeId(1), NodeId(2), false);
        r.force_refresh(NodeId(0), SimTime::from_secs_f64(0.1), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), None, "refreshed view");
        assert_eq!(
            r.next_hop(NodeId(1), NodeId(2)),
            Some(NodeId(2)),
            "other views untouched"
        );
    }

    #[test]
    fn next_hop_to_self_is_none() {
        let mut r = ls(3);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn trace_detects_disconnection() {
        let mut truth = Adjacency::new(4);
        truth.set_edge(NodeId(0), NodeId(1), true);
        truth.set_edge(NodeId(2), NodeId(3), true);
        let mut r = LinkState::new(&truth, SimDuration::from_secs(5));
        assert!(r.trace_path(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn refresh_counts_only_real_changes() {
        let mut r = ls(4);
        let truth = Adjacency::linear(4);
        r.refresh_due_views(SimTime::from_secs_f64(10.0), &truth);
        assert_eq!(r.stats().refreshes, 0, "no change, no refresh work");
        let mut changed = Adjacency::linear(4);
        changed.set_edge(NodeId(0), NodeId(2), true);
        r.refresh_due_views(SimTime::from_secs_f64(20.0), &changed);
        assert_eq!(r.stats().refreshes, 4, "all views pick up the change");
    }

    #[test]
    fn shortcut_is_used_after_refresh() {
        let mut r = ls(4); // 0-1-2-3
        let mut truth = Adjacency::linear(4);
        truth.set_edge(NodeId(0), NodeId(3), true); // direct shortcut
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(3)));
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(3)), Some(1));
    }
}
