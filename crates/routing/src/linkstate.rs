//! Per-node topology views and next-hop selection.
//!
//! Performance notes (mobility ticks used to dominate mobile runs):
//!
//! * all views refreshing to the same ground truth **share** one
//!   `Arc`-owned snapshot and one all-pairs distance table instead of
//!   recomputing BFS-per-source per view (n× less work, n× less memory);
//! * the shared distance table is maintained **incrementally**: when the
//!   ground truth changes, BFS is re-run only from sources whose
//!   distances can actually differ, using exact criteria on the changed
//!   edges (an added edge `{u,v}` is a shortcut for source `s` iff
//!   `|d(s,u) − d(s,v)| ≥ 2`; a removed edge can only hurt `s` iff it was
//!   tight, `|d(s,u) − d(s,v)| = 1`). Unaffected rows are reused as-is,
//!   which keeps results bit-identical to a full recompute.

use crate::graph::{Adjacency, UNREACHABLE};
use jtp_sim::{NodeId, SimDuration, SimTime};
use std::sync::Arc;

type DistTable = Arc<Vec<Vec<u16>>>;

/// One node's snapshot of the topology, plus its shortest-path distances.
#[derive(Clone, Debug)]
struct View {
    adj: Arc<Adjacency>,
    dist: DistTable,
    refreshed_at: SimTime,
}

/// Routing diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutingStats {
    /// View refreshes performed across all nodes.
    pub refreshes: u64,
    /// next_hop queries that found no route in the local view.
    pub no_route: u64,
    /// BFS source recomputations skipped by the incremental distance
    /// update (each is one avoided O(V+E) traversal).
    pub bfs_skipped: u64,
    /// BFS source recomputations performed.
    pub bfs_run: u64,
}

/// The current ground truth and its distances, shared by fresh views.
#[derive(Clone, Debug)]
struct TruthCache {
    adj: Arc<Adjacency>,
    dist: DistTable,
}

/// Link-state routing: one possibly stale snapshot (`View`) per node, refreshed
/// from ground truth every `refresh_interval`.
#[derive(Clone, Debug)]
pub struct LinkState {
    views: Vec<View>,
    refresh_interval: SimDuration,
    stats: RoutingStats,
    cache: TruthCache,
}

impl LinkState {
    /// Create with all views initialised from `initial` at t=0 (the
    /// network boots with converged routing, like the paper's warm-up).
    pub fn new(initial: &Adjacency, refresh_interval: SimDuration) -> Self {
        let n = initial.len();
        let adj = Arc::new(initial.clone());
        let dist: DistTable = Arc::new(initial.all_pairs_distances());
        let views = (0..n)
            .map(|_| View {
                adj: Arc::clone(&adj),
                dist: Arc::clone(&dist),
                refreshed_at: SimTime::ZERO,
            })
            .collect();
        LinkState {
            views,
            refresh_interval,
            stats: RoutingStats::default(),
            cache: TruthCache { adj, dist },
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when managing zero nodes.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Bring the shared truth cache up to date with `ground_truth`,
    /// re-running BFS only from affected sources.
    fn ensure_cache(&mut self, ground_truth: &Adjacency) {
        if *self.cache.adj == *ground_truth {
            return;
        }
        let changed = self.cache.adj.diff_edges(ground_truth);
        let old = &self.cache.dist;
        let n = ground_truth.len();
        let mut rows: Vec<Vec<u16>> = Vec::with_capacity(n);
        for s in 0..n {
            let row = &old[s];
            let affected = changed.iter().any(|&(u, v, present)| {
                let (du, dv) = (row[u.index()], row[v.index()]);
                if present {
                    // Added edge: a shortcut for s iff the endpoints sat
                    // ≥ 2 levels apart (∞ on one side counts).
                    match (du == UNREACHABLE, dv == UNREACHABLE) {
                        (true, true) => false,
                        (true, false) | (false, true) => true,
                        (false, false) => du.abs_diff(dv) >= 2,
                    }
                } else {
                    // Removed edge: can only matter if it was tight
                    // (adjacent endpoints differ by exactly 1 level).
                    du != UNREACHABLE && dv != UNREACHABLE && du.abs_diff(dv) == 1
                }
            });
            if affected {
                self.stats.bfs_run += 1;
                rows.push(ground_truth.bfs_distances(NodeId(s as u32)));
            } else {
                self.stats.bfs_skipped += 1;
                rows.push(row.clone());
            }
        }
        self.cache = TruthCache {
            adj: Arc::new(ground_truth.clone()),
            dist: Arc::new(rows),
        };
    }

    /// Refresh every view whose snapshot is older than the refresh
    /// interval. Call whenever ground truth may have changed (the assembly
    /// calls this on mobility updates); cheap when nothing is due.
    pub fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency) {
        let any_due_and_stale = self
            .views
            .iter()
            .any(|v| now.since(v.refreshed_at) >= self.refresh_interval && *v.adj != *ground_truth);
        if any_due_and_stale {
            self.ensure_cache(ground_truth);
        }
        for view in &mut self.views {
            if now.since(view.refreshed_at) < self.refresh_interval {
                continue;
            }
            if *view.adj != *ground_truth {
                view.adj = Arc::clone(&self.cache.adj);
                view.dist = Arc::clone(&self.cache.dist);
                self.stats.refreshes += 1;
            }
            // Due views — updated or already accurate — restart the
            // staleness clock.
            view.refreshed_at = now;
        }
    }

    /// Force one node's view up to date (e.g. a node hears a broken-link
    /// advertisement immediately).
    pub fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency) {
        self.ensure_cache(ground_truth);
        let view = &mut self.views[node.index()];
        view.adj = Arc::clone(&self.cache.adj);
        view.dist = Arc::clone(&self.cache.dist);
        view.refreshed_at = now;
        self.stats.refreshes += 1;
    }

    /// Next hop from `from` toward `dst` according to **`from`'s own
    /// view**: the neighbour minimising `(distance-to-dst, id)`.
    pub fn next_hop(&mut self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        if from == dst {
            return None;
        }
        let view = &self.views[from.index()];
        let mut best: Option<(u16, NodeId)> = None;
        for &v in view.adj.neighbors(from) {
            let d = view.dist[v.index()][dst.index()];
            if d == UNREACHABLE {
                continue;
            }
            if best.is_none_or(|(bd, bid)| (d, v) < (bd, bid)) {
                best = Some((d, v));
            }
        }
        if best.is_none() {
            self.stats.no_route += 1;
        }
        best.map(|(_, v)| v)
    }

    /// Remaining hop count from `from` to `dst` in `from`'s view (the
    /// `H_i` of eq. 4). None if the view has no route.
    pub fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        if from == dst {
            return Some(0);
        }
        let d = self.views[from.index()].dist[from.index()][dst.index()];
        (d != UNREACHABLE).then_some(d as u32)
    }

    /// Walk the per-hop next-hop decisions from `src` to `dst`; returns
    /// the node sequence, or None if the walk fails or loops (possible
    /// with inconsistent views).
    pub fn trace_path(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        let limit = self.len() * 2;
        while cur != dst {
            if path.len() > limit {
                return None; // inconsistent views looped the packet
            }
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
        }
        Some(path)
    }

    /// Diagnostics.
    pub fn stats(&self) -> RoutingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(n: usize) -> LinkState {
        LinkState::new(&Adjacency::linear(n), SimDuration::from_secs(5))
    }

    #[test]
    fn chain_routing() {
        let mut r = ls(5);
        assert_eq!(r.next_hop(NodeId(0), NodeId(4)), Some(NodeId(1)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(4)), Some(NodeId(4)));
        assert_eq!(r.next_hop(NodeId(4), NodeId(0)), Some(NodeId(3)));
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(r.remaining_hops(NodeId(4), NodeId(4)), Some(0));
    }

    #[test]
    fn paths_are_symmetric_on_consistent_views() {
        let mut a = Adjacency::new(6);
        // A small mesh with redundant routes.
        for (u, v) in [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)] {
            a.set_edge(NodeId(u), NodeId(v), true);
        }
        let mut r = LinkState::new(&a, SimDuration::from_secs(5));
        let fwd = r.trace_path(NodeId(0), NodeId(5)).unwrap();
        let mut rev = r.trace_path(NodeId(5), NodeId(0)).unwrap();
        rev.reverse();
        assert_eq!(fwd, rev, "deterministic tie-break => symmetric routes");
    }

    #[test]
    fn stale_view_ignores_topology_change_until_refresh() {
        let mut r = ls(3);
        let mut truth = Adjacency::linear(3);
        truth.set_edge(NodeId(1), NodeId(2), false); // link breaks
                                                     // Immediately after the break, views are stale: still routes via 1.
        r.refresh_due_views(SimTime::from_secs_f64(1.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(NodeId(1)));
        // After the refresh interval the view updates: no route.
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), None);
        assert!(r.stats().no_route > 0);
    }

    #[test]
    fn force_refresh_is_immediate_and_local() {
        let mut r = ls(3);
        let mut truth = Adjacency::linear(3);
        truth.set_edge(NodeId(1), NodeId(2), false);
        r.force_refresh(NodeId(0), SimTime::from_secs_f64(0.1), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), None, "refreshed view");
        assert_eq!(
            r.next_hop(NodeId(1), NodeId(2)),
            Some(NodeId(2)),
            "other views untouched"
        );
    }

    #[test]
    fn next_hop_to_self_is_none() {
        let mut r = ls(3);
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn trace_detects_disconnection() {
        let mut truth = Adjacency::new(4);
        truth.set_edge(NodeId(0), NodeId(1), true);
        truth.set_edge(NodeId(2), NodeId(3), true);
        let mut r = LinkState::new(&truth, SimDuration::from_secs(5));
        assert!(r.trace_path(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn refresh_counts_only_real_changes() {
        let mut r = ls(4);
        let truth = Adjacency::linear(4);
        r.refresh_due_views(SimTime::from_secs_f64(10.0), &truth);
        assert_eq!(r.stats().refreshes, 0, "no change, no refresh work");
        let mut changed = Adjacency::linear(4);
        changed.set_edge(NodeId(0), NodeId(2), true);
        r.refresh_due_views(SimTime::from_secs_f64(20.0), &changed);
        assert_eq!(r.stats().refreshes, 4, "all views pick up the change");
    }

    #[test]
    fn shortcut_is_used_after_refresh() {
        let mut r = ls(4); // 0-1-2-3
        let mut truth = Adjacency::linear(4);
        truth.set_edge(NodeId(0), NodeId(3), true); // direct shortcut
        r.refresh_due_views(SimTime::from_secs_f64(6.0), &truth);
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(NodeId(3)));
        assert_eq!(r.remaining_hops(NodeId(0), NodeId(3)), Some(1));
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        // Evolve a graph through adds and removes; after every refresh the
        // shared distance table must equal a from-scratch recompute.
        let n = 9;
        let mut truth = Adjacency::linear(n);
        let mut r = LinkState::new(&truth, SimDuration::from_secs(1));
        let edits: Vec<(u32, u32, bool)> = vec![
            (0, 5, true),
            (3, 4, false),
            (2, 7, true),
            (0, 5, false),
            (1, 8, true),
            (6, 7, false),
            (3, 4, true),
            (0, 1, false),
        ];
        for (step, (u, v, present)) in edits.into_iter().enumerate() {
            truth.set_edge(NodeId(u), NodeId(v), present);
            let now = SimTime::from_secs_f64(2.0 * (step as f64 + 1.0));
            r.refresh_due_views(now, &truth);
            let expect = truth.all_pairs_distances();
            assert_eq!(*r.cache.dist, expect, "divergence after edit {step}");
        }
        let s = r.stats();
        assert!(s.bfs_skipped > 0, "incremental path never skipped a BFS");
        assert!(s.bfs_run > 0, "affected sources must recompute");
    }

    #[test]
    fn fresh_views_share_one_distance_table() {
        let mut r = ls(6);
        let mut truth = Adjacency::linear(6);
        truth.set_edge(NodeId(0), NodeId(5), true);
        r.refresh_due_views(SimTime::from_secs_f64(10.0), &truth);
        for w in r.views.windows(2) {
            assert!(Arc::ptr_eq(&w[0].dist, &w[1].dist), "views must share");
            assert!(Arc::ptr_eq(&w[0].adj, &w[1].adj));
        }
    }
}
