//! Affected-region repair of BFS hop-distance rows.
//!
//! The hop-count table re-ran a full BFS from every *affected* source on
//! each dynamics flood (the PR 1 criterion skips provably-unaffected
//! sources, but an affected source paid O(V+E) even when one edge at the
//! far side of its tree moved). This module repairs an affected row in
//! place, mirroring the weighted repair in [`crate::wapsp`] with every
//! weight fixed at 1:
//!
//! 1. an **increase pass** over the intermediate graph (old edges minus
//!    removals): candidates pop in ascending old distance; a node keeps
//!    its distance iff an unaffected neighbour still supports it
//!    (`row[u] + 1 == row[x]`), otherwise it joins the affected region,
//!    which is re-settled by a shortest-path pass seeded from its
//!    unaffected boundary;
//! 2. a **decrease pass** applying the added edges: seeded with every
//!    directly-improved endpoint, relaxing outward, touching only nodes
//!    whose distance actually drops.
//!
//! Hop distances are small integers, so every priority queue here is a
//! **bucket queue** (a `Vec` per distance, reused across rows): O(1)
//! push, ascending-bucket scan, no binary-heap constants — at 100 nodes
//! the heap version cost about as much as the full BFS it replaced.
//! Within one bucket the processing order is irrelevant: supports and
//! relaxations only ever consult strictly smaller distances.
//!
//! Both phases compute exact hop distances, and hop distances are unique
//! integers — repaired rows are **bit-identical** to a from-scratch BFS
//! (pinned by the linkstate tests and the netsim whole-run equivalence
//! suite). Cost is proportional to the affected region, not to n.

use crate::graph::{Adjacency, UNREACHABLE};
use jtp_sim::NodeId;

/// Reusable scratch buffers (one per repair batch, shared across rows).
/// Buckets keep their capacity across rows and phases.
pub(crate) struct BfsRepairScratch {
    affected: Vec<bool>,
    visited: Vec<bool>,
    touched: Vec<usize>,
    /// `buckets[d]` holds nodes queued at distance `d` (old distance in
    /// the increase pass, tentative distance in the settle passes).
    buckets: Vec<Vec<u32>>,
    /// Entries written by the last repair (deduplicated): the exact set
    /// the caller must diff against the original row — O(touched), not
    /// O(n). Consumed via [`BfsRepairScratch::drain_dirty`].
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
}

impl BfsRepairScratch {
    pub(crate) fn new(n: usize) -> Self {
        BfsRepairScratch {
            affected: vec![false; n],
            visited: vec![false; n],
            touched: Vec::new(),
            // Hop distances are < n; +1 headroom for the `d + 1` pushes.
            buckets: vec![Vec::new(); n + 1],
            dirty: vec![false; n],
            dirty_list: Vec::new(),
        }
    }

    /// Visit every entry index the last [`repair_bfs_row`] wrote (some
    /// writes may have restored the original value — the caller compares
    /// values), clearing the log for the next row.
    pub(crate) fn drain_dirty(&mut self, mut f: impl FnMut(usize)) {
        for x in self.dirty_list.drain(..) {
            self.dirty[x as usize] = false;
            f(x as usize);
        }
    }
}

/// Repair `row` — exact BFS distances over `old_adj` — into exact BFS
/// distances over `new_adj`. `removed`/`added` are the edge diff split
/// by direction (as `(usize, usize)` index pairs).
///
/// Sources are identified **by value**: every entry at distance 0 is a
/// source and is never modified. For the classic single-source row that
/// is exactly the source node; the hierarchical backend reuses the same
/// repair on **multi-source** rows (distance-to-cluster, a BFS from a
/// super-source), where every cluster member sits at 0 — the support and
/// relaxation arguments are unchanged because a multi-source BFS is a
/// single-source BFS from the contracted super-source.
pub(crate) fn repair_bfs_row(
    old_adj: &Adjacency,
    new_adj: &Adjacency,
    removed: &[(usize, usize)],
    added: &[(usize, usize)],
    row: &mut [u16],
    scratch: &mut BfsRepairScratch,
) {
    let BfsRepairScratch {
        affected,
        visited,
        touched,
        buckets,
        dirty,
        dirty_list,
    } = scratch;
    debug_assert!(dirty_list.is_empty(), "previous dirty log not drained");
    let mark = |dirty: &mut Vec<bool>, dirty_list: &mut Vec<u32>, x: usize| {
        if !dirty[x] {
            dirty[x] = true;
            dirty_list.push(x as u32);
        }
    };
    // A neighbour iteration over the intermediate graph (old − removed =
    // old ∩ new) is "new-adjacency neighbours that were also present in
    // the old adjacency" (edge-presence checks are O(1)).
    let mid_neighbors = |x: usize| {
        new_adj
            .neighbors(NodeId(x as u32))
            .iter()
            .copied()
            .filter(move |&u| old_adj.has_edge(NodeId(x as u32), u))
    };

    // ---- Phase 1a: identify the affected region under removals.
    // Candidates scan in ascending *old* distance; every potential
    // supporter is strictly closer, so its status is final when a node
    // is examined.
    let (mut lo, mut hi) = (usize::MAX, 0usize);
    let push = |buckets: &mut Vec<Vec<u32>>, d: usize, x: u32, lo: &mut usize, hi: &mut usize| {
        buckets[d].push(x);
        *lo = (*lo).min(d);
        *hi = (*hi).max(d);
    };
    for &(a, b) in removed {
        for x in [a, b] {
            if row[x] != 0 && row[x] != UNREACHABLE {
                push(buckets, row[x] as usize, x as u32, &mut lo, &mut hi);
            }
        }
    }
    touched.clear();
    let mut d = lo;
    while d <= hi {
        if buckets[d].is_empty() {
            d += 1;
            continue;
        }
        // Expansion only pushes strictly larger old distances, so the
        // current bucket never grows while it drains.
        let mut cur = std::mem::take(&mut buckets[d]);
        for &x in &cur {
            let x = x as usize;
            if visited[x] {
                continue;
            }
            visited[x] = true;
            touched.push(x);
            let supported = mid_neighbors(x).any(|u| {
                !affected[u.index()]
                    && row[u.index()] != UNREACHABLE
                    && row[u.index()] + 1 == d as u16
            });
            if supported {
                continue;
            }
            affected[x] = true;
            for y in mid_neighbors(x) {
                let yi = y.index();
                if !visited[yi] && row[yi] != UNREACHABLE && row[yi] as usize > d {
                    buckets[row[yi] as usize].push(y.0);
                    hi = hi.max(row[yi] as usize);
                }
            }
        }
        cur.clear();
        buckets[d] = cur;
        d += 1;
    }
    if lo != usize::MAX {
        // ---- Phase 1b: re-settle the affected region from its
        // unaffected boundary (whose distances are still exact).
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &x in touched.iter() {
            if !affected[x] {
                continue;
            }
            let mut best = UNREACHABLE;
            for u in mid_neighbors(x) {
                if !affected[u.index()] && row[u.index()] != UNREACHABLE {
                    best = best.min(row[u.index()] + 1);
                }
            }
            // Every affected node is logged here; the 1b relaxations
            // below only ever write affected nodes, so they need no
            // further marking.
            mark(dirty, dirty_list, x);
            row[x] = best;
            if best != UNREACHABLE {
                push(buckets, best as usize, x as u32, &mut lo, &mut hi);
            }
        }
        let mut d = lo;
        while d <= hi {
            if buckets[d].is_empty() {
                d += 1;
                continue;
            }
            let mut cur = std::mem::take(&mut buckets[d]);
            for &x in &cur {
                let x = x as usize;
                if row[x] as usize != d {
                    continue; // stale: settled at a smaller distance
                }
                for y in mid_neighbors(x) {
                    let yi = y.index();
                    if affected[yi] && (d + 1) < row[yi] as usize {
                        row[yi] = (d + 1) as u16;
                        buckets[d + 1].push(y.0);
                        hi = hi.max(d + 1);
                    }
                }
            }
            cur.clear();
            buckets[d] = cur;
            d += 1;
        }
        for &x in touched.iter() {
            affected[x] = false;
            visited[x] = false;
        }
    }

    // ---- Phase 2: decrease pass applying the added edges — a seeded
    // relaxation over the new adjacency touches exactly the improved
    // region.
    let (mut lo, mut hi) = (usize::MAX, 0usize);
    for &(a, b) in added {
        for (x, via) in [(a, b), (b, a)] {
            if row[x] == 0 || row[via] == UNREACHABLE {
                continue;
            }
            let cand = row[via] + 1;
            if cand < row[x] {
                mark(dirty, dirty_list, x);
                row[x] = cand;
                push(buckets, cand as usize, x as u32, &mut lo, &mut hi);
            }
        }
    }
    let mut d = lo;
    while d <= hi {
        if buckets[d].is_empty() {
            d += 1;
            continue;
        }
        let mut cur = std::mem::take(&mut buckets[d]);
        for &x in &cur {
            let x = x as usize;
            if row[x] as usize != d {
                continue; // stale: improved below this bucket
            }
            for &y in new_adj.neighbors(NodeId(x as u32)) {
                let yi = y.index();
                if (d + 1) < row[yi] as usize {
                    mark(dirty, dirty_list, yi);
                    row[yi] = (d + 1) as u16;
                    buckets[d + 1].push(y.0);
                    hi = hi.max(d + 1);
                }
            }
        }
        cur.clear();
        buckets[d] = cur;
        d += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtp_sim::SimRng;

    type EdgeList = Vec<(usize, usize)>;

    fn split_diff(diff: &[(NodeId, NodeId, bool)]) -> (EdgeList, EdgeList) {
        let removed = diff
            .iter()
            .filter(|&&(_, _, p)| !p)
            .map(|&(a, b, _)| (a.index(), b.index()))
            .collect();
        let added = diff
            .iter()
            .filter(|&&(_, _, p)| p)
            .map(|&(a, b, _)| (a.index(), b.index()))
            .collect();
        (removed, added)
    }

    /// Random edge churn: every repaired row must equal a from-scratch
    /// BFS, across connect/sever cycles and multi-edge steps (the same
    /// scratch is reused throughout, so leftover state would surface).
    #[test]
    fn repaired_rows_match_scratch_bfs() {
        let mut rng = SimRng::derive(808, "bfs-repair-churn");
        for n in [8usize, 14, 23] {
            let mut adj = Adjacency::linear(n);
            let mut rows: Vec<Vec<u16>> = (0..n)
                .map(|s| adj.bfs_distances(NodeId(s as u32)))
                .collect();
            let mut scratch = BfsRepairScratch::new(n);
            for step in 0..80 {
                let mut new = adj.clone();
                for _ in 0..1 + rng.below(3) {
                    let a = rng.below(n);
                    let b = rng.below(n);
                    if a != b {
                        let has = new.has_edge(NodeId(a as u32), NodeId(b as u32));
                        new.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                    }
                }
                let diff = adj.diff_edges(&new);
                let (removed, added) = split_diff(&diff);
                for (s, row) in rows.iter_mut().enumerate() {
                    let before = row.clone();
                    repair_bfs_row(&adj, &new, &removed, &added, row, &mut scratch);
                    // The dirty log must cover every entry that changed
                    // (the hop-table patch relies on that).
                    let mut logged = vec![false; n];
                    scratch.drain_dirty(|v| logged[v] = true);
                    for v in 0..n {
                        if before[v] != row[v] {
                            assert!(
                                logged[v],
                                "n={n} step={step} source={s}: changed entry {v} missing from dirty log"
                            );
                        }
                    }
                    assert_eq!(
                        *row,
                        new.bfs_distances(NodeId(s as u32)),
                        "n={n} step={step} source={s}: repair diverged from BFS"
                    );
                }
                adj = new;
            }
        }
    }

    #[test]
    fn disconnect_and_reconnect_roundtrip() {
        let adj = Adjacency::linear(6);
        let mut cut = adj.clone();
        cut.set_edge(NodeId(2), NodeId(3), false);
        let mut scratch = BfsRepairScratch::new(6);
        let mut row = adj.bfs_distances(NodeId(0));
        repair_bfs_row(&adj, &cut, &[(2, 3)], &[], &mut row, &mut scratch);
        scratch.drain_dirty(|_| {});
        assert_eq!(row, cut.bfs_distances(NodeId(0)));
        assert_eq!(row[5], UNREACHABLE);
        repair_bfs_row(&cut, &adj, &[], &[(2, 3)], &mut row, &mut scratch);
        scratch.drain_dirty(|_| {});
        assert_eq!(row, adj.bfs_distances(NodeId(0)));
        assert_eq!(row[5], 5);
    }
}
