//! The routing-backend contract and the [`LinkState`] facade netsim
//! drives.
//!
//! [`RoutingBackend`] is the surface the flood paths consume — queries
//! (`next_hop`, `remaining_hops`, the converged-distance row access,
//! stats) and mutations (the churn/weight/geometry-diff repairs behind
//! `refresh_due_views` / `force_refresh*`, worker-chunked rebuilds
//! behind `set_workers`). Two implementors exist:
//!
//! * [`ExactBackend`] — the historical flat-table
//!   machinery, moved behind the trait **byte-identically**: with
//!   `routing_backend = exact` every golden digest, event checksum and
//!   statistic is unchanged from before the refactor, for every worker
//!   count (the netsim equivalence suites pin this);
//! * [`HierarchicalBackend`] — cluster
//!   routing with O(k·n) state; routes are lawful (loop-free, deliver
//!   whenever exact does, stretch bounded by the destination cluster's
//!   subgraph diameter) rather than byte-equal (see
//!   [`crate::hierarchy`]).
//!
//! [`LinkState`] wraps the two in an enum — static dispatch, so the
//! exact backend's per-packet `next_hop` array load gains one
//! predictable branch and no vtable call, and `Clone`/`Debug` compose
//! without boxing.

use crate::graph::Adjacency;
use crate::hierarchy::{ClusterSpec, HierarchicalBackend, HierarchyStats};
use crate::linkstate::{ExactBackend, RoutingStats};
use jtp_sim::par::ParStats;
use jtp_sim::{NodeId, SimDuration, SimTime};

/// The query/mutation surface a routing backend offers the engine's
/// flood paths (see the module docs for the two implementors and their
/// equivalence contracts).
pub trait RoutingBackend {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// True when managing zero nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worker-thread count for the flood-plane fan-outs. A pure
    /// performance knob: every backend's results are byte-identical for
    /// every value.
    fn set_workers(&mut self, workers: usize);

    /// Fan-out wall-clock accounting (perf diagnostics only).
    fn parallel_stats(&self) -> ParStats;

    /// Advertise per-node forwarding weights (energy-aware routing), or
    /// `None` for plain hop counts. The hierarchical backend rejects
    /// `Some` weights (netsim's config validation makes the combination
    /// unrepresentable).
    fn set_node_weights(&mut self, weights: Option<Vec<u16>>);

    /// Legacy comparison mode (whole-row BFS + from-scratch table
    /// builds). Exact-only — the historical cost baseline; a no-op on
    /// backends without a legacy mode.
    fn set_full_table_rebuild(&mut self, _on: bool) {}

    /// Legacy comparison mode for weighted routing. Exact-only; a no-op
    /// elsewhere.
    fn set_full_weighted_rebuild(&mut self, _on: bool) {}

    /// Refresh every view older than the refresh interval against
    /// `ground_truth` (the periodic advertisement path).
    fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency);

    /// Force one node's view up to date immediately.
    fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency);

    /// Force every view up to date — a flooded advertisement.
    fn force_refresh_all(&mut self, now: SimTime, ground_truth: &Adjacency);

    /// Next hop from `from` toward `dst` in `from`'s own (possibly
    /// stale) view.
    fn next_hop(&self, from: NodeId, dst: NodeId) -> Option<NodeId>;

    /// Remaining-hops estimate from `from` to `dst` in `from`'s view
    /// (the `H_i` of eq. 4). Exact: the true distance. Hierarchical: an
    /// upper bound (distance-to-cluster + destination eccentricity).
    fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32>;

    /// Row access against the backend's *converged* tables (the shared
    /// cache as of the last completed refresh, not a per-node view):
    /// exact shortest distance for [`ExactBackend`], the conservative
    /// route-length estimate for the hierarchical backend. Equivalence
    /// tests measure stretch against this.
    fn converged_distance(&self, from: NodeId, dst: NodeId) -> Option<u32>;

    /// Flood-plane diagnostics.
    fn stats(&self) -> RoutingStats;
}

impl RoutingBackend for ExactBackend {
    fn len(&self) -> usize {
        self.len()
    }
    fn set_workers(&mut self, workers: usize) {
        self.set_workers(workers);
    }
    fn parallel_stats(&self) -> ParStats {
        self.parallel_stats()
    }
    fn set_node_weights(&mut self, weights: Option<Vec<u16>>) {
        self.set_node_weights(weights);
    }
    fn set_full_table_rebuild(&mut self, on: bool) {
        self.set_full_table_rebuild(on);
    }
    fn set_full_weighted_rebuild(&mut self, on: bool) {
        self.set_full_weighted_rebuild(on);
    }
    fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.refresh_due_views(now, ground_truth);
    }
    fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency) {
        self.force_refresh(node, now, ground_truth);
    }
    fn force_refresh_all(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.force_refresh_all(now, ground_truth);
    }
    fn next_hop(&self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        self.next_hop(from, dst)
    }
    fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        self.remaining_hops(from, dst)
    }
    fn converged_distance(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        self.converged_distance(from, dst)
    }
    fn stats(&self) -> RoutingStats {
        self.stats()
    }
}

impl RoutingBackend for HierarchicalBackend {
    fn len(&self) -> usize {
        self.len_impl()
    }
    fn set_workers(&mut self, workers: usize) {
        self.set_workers_impl(workers);
    }
    fn parallel_stats(&self) -> ParStats {
        self.parallel_stats_impl()
    }
    fn set_node_weights(&mut self, weights: Option<Vec<u16>>) {
        self.set_node_weights_impl(weights);
    }
    fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.refresh_due_views_impl(now, ground_truth);
    }
    fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency) {
        self.force_refresh_impl(node, now, ground_truth);
    }
    fn force_refresh_all(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.force_refresh_all_impl(now, ground_truth);
    }
    fn next_hop(&self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        self.next_hop_impl(from, dst)
    }
    fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        self.remaining_hops_impl(from, dst)
    }
    fn converged_distance(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        self.converged_distance(from, dst)
    }
    fn stats(&self) -> RoutingStats {
        self.stats_impl()
    }
}

/// Which backend a run routes with (lowered from
/// `ExperimentConfig::routing_backend`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendSelect {
    /// The flat-table exact backend (the default; byte-identical to the
    /// pre-refactor engine).
    Exact,
    /// Hierarchical cluster routing with the given partition spec.
    Hierarchical(ClusterSpec),
}

#[derive(Clone, Debug)]
enum Imp {
    Exact(ExactBackend),
    Hier(HierarchicalBackend),
}

/// The routing facade the engine holds: the historical `LinkState` API,
/// now dispatching to the selected [`RoutingBackend`].
#[derive(Clone, Debug)]
pub struct LinkState {
    imp: Imp,
}

impl LinkState {
    /// The historical constructor: the exact backend, all views
    /// converged at t = 0.
    pub fn new(initial: &Adjacency, refresh_interval: SimDuration) -> Self {
        LinkState {
            imp: Imp::Exact(ExactBackend::new(initial, refresh_interval)),
        }
    }

    /// Construct with an explicit backend selection.
    pub fn with_backend(
        initial: &Adjacency,
        refresh_interval: SimDuration,
        select: &BackendSelect,
    ) -> Self {
        let imp = match select {
            BackendSelect::Exact => Imp::Exact(ExactBackend::new(initial, refresh_interval)),
            BackendSelect::Hierarchical(spec) => {
                Imp::Hier(HierarchicalBackend::new(initial, refresh_interval, spec))
            }
        };
        LinkState { imp }
    }

    /// Shared access to the selected backend through the trait.
    pub fn backend(&self) -> &dyn RoutingBackend {
        match &self.imp {
            Imp::Exact(b) => b,
            Imp::Hier(b) => b,
        }
    }

    fn backend_mut(&mut self) -> &mut dyn RoutingBackend {
        match &mut self.imp {
            Imp::Exact(b) => b,
            Imp::Hier(b) => b,
        }
    }

    /// Hierarchy diagnostics; `None` on the exact backend.
    pub fn hierarchy_stats(&self) -> Option<HierarchyStats> {
        match &self.imp {
            Imp::Exact(_) => None,
            Imp::Hier(b) => Some(b.hierarchy_stats()),
        }
    }

    /// The hierarchical backend, when selected (tests and the stretch
    /// bench reach cluster introspection through this).
    pub fn hierarchical(&self) -> Option<&HierarchicalBackend> {
        match &self.imp {
            Imp::Exact(_) => None,
            Imp::Hier(b) => Some(b),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.backend().len()
    }

    /// True when managing zero nodes.
    pub fn is_empty(&self) -> bool {
        self.backend().is_empty()
    }

    /// See [`RoutingBackend::set_workers`].
    pub fn set_workers(&mut self, workers: usize) {
        self.backend_mut().set_workers(workers);
    }

    /// See [`RoutingBackend::parallel_stats`].
    pub fn parallel_stats(&self) -> ParStats {
        self.backend().parallel_stats()
    }

    /// See [`RoutingBackend::set_node_weights`].
    pub fn set_node_weights(&mut self, weights: Option<Vec<u16>>) {
        self.backend_mut().set_node_weights(weights);
    }

    /// See [`RoutingBackend::set_full_table_rebuild`].
    pub fn set_full_table_rebuild(&mut self, on: bool) {
        self.backend_mut().set_full_table_rebuild(on);
    }

    /// See [`RoutingBackend::set_full_weighted_rebuild`].
    pub fn set_full_weighted_rebuild(&mut self, on: bool) {
        self.backend_mut().set_full_weighted_rebuild(on);
    }

    /// See [`RoutingBackend::refresh_due_views`].
    pub fn refresh_due_views(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.backend_mut().refresh_due_views(now, ground_truth);
    }

    /// See [`RoutingBackend::force_refresh`].
    pub fn force_refresh(&mut self, node: NodeId, now: SimTime, ground_truth: &Adjacency) {
        self.backend_mut().force_refresh(node, now, ground_truth);
    }

    /// See [`RoutingBackend::force_refresh_all`].
    pub fn force_refresh_all(&mut self, now: SimTime, ground_truth: &Adjacency) {
        self.backend_mut().force_refresh_all(now, ground_truth);
    }

    /// See [`RoutingBackend::next_hop`]. Statically dispatched — the
    /// exact backend's per-packet array load keeps its cost.
    #[inline]
    pub fn next_hop(&self, from: NodeId, dst: NodeId) -> Option<NodeId> {
        match &self.imp {
            Imp::Exact(b) => b.next_hop(from, dst),
            Imp::Hier(b) => b.next_hop_impl(from, dst),
        }
    }

    /// See [`RoutingBackend::remaining_hops`].
    #[inline]
    pub fn remaining_hops(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        match &self.imp {
            Imp::Exact(b) => b.remaining_hops(from, dst),
            Imp::Hier(b) => b.remaining_hops_impl(from, dst),
        }
    }

    /// See [`RoutingBackend::converged_distance`].
    pub fn converged_distance(&self, from: NodeId, dst: NodeId) -> Option<u32> {
        self.backend().converged_distance(from, dst)
    }

    /// Walk the per-hop next-hop decisions from `src` to `dst`; returns
    /// the node sequence, or None if the walk fails or loops (possible
    /// with inconsistent views).
    pub fn trace_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        let limit = self.len() * 2;
        while cur != dst {
            if path.len() > limit {
                return None; // inconsistent views looped the packet
            }
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
        }
        Some(path)
    }

    /// See [`RoutingBackend::stats`].
    pub fn stats(&self) -> RoutingStats {
        self.backend().stats()
    }
}
