//! Undirected connectivity graphs and shortest-path distances.
//!
//! `Adjacency` maintains both an O(1) edge matrix and per-node sorted
//! neighbour lists, so the hot next-hop path iterates a slice instead of
//! allocating, and BFS runs over compact lists.

use jtp_sim::NodeId;

/// Symmetric adjacency over `n` nodes.
#[derive(Clone, Eq, Debug)]
pub struct Adjacency {
    n: usize,
    edges: Vec<bool>, // row-major n×n
    /// Neighbours of each node in ascending id order (kept in sync with
    /// `edges`; derived state, excluded from equality).
    neighbors: Vec<Vec<NodeId>>,
}

impl PartialEq for Adjacency {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

/// Distance marker for unreachable pairs.
pub const UNREACHABLE: u16 = u16::MAX;

impl Adjacency {
    /// An edgeless graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Adjacency {
            n,
            edges: vec![false; n * n],
            neighbors: vec![Vec::new(); n],
        }
    }

    /// A linear chain 0—1—…—(n−1), the paper's linear topologies.
    pub fn linear(n: usize) -> Self {
        let mut a = Adjacency::new(n);
        for i in 1..n {
            a.set_edge(NodeId(i as u32 - 1), NodeId(i as u32), true);
        }
        a
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn idx(&self, a: NodeId, b: NodeId) -> usize {
        a.index() * self.n + b.index()
    }

    fn neighbor_list_set(&mut self, a: NodeId, b: NodeId, present: bool) {
        let list = &mut self.neighbors[a.index()];
        match list.binary_search(&b) {
            Ok(pos) if !present => {
                list.remove(pos);
            }
            Err(pos) if present => list.insert(pos, b),
            _ => {}
        }
    }

    /// Add or remove the undirected edge `{a, b}`.
    pub fn set_edge(&mut self, a: NodeId, b: NodeId, present: bool) {
        assert!(a.index() < self.n && b.index() < self.n);
        assert_ne!(a, b, "self loops are meaningless");
        let (i, j) = (self.idx(a, b), self.idx(b, a));
        self.edges[i] = present;
        self.edges[j] = present;
        self.neighbor_list_set(a, b, present);
        self.neighbor_list_set(b, a, present);
    }

    /// Edge presence.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.edges[self.idx(a, b)]
    }

    /// Neighbours of `a` in ascending id order.
    pub fn neighbors(&self, a: NodeId) -> &[NodeId] {
        &self.neighbors[a.index()]
    }

    /// The graph relabelled by `perm`: node `i` of `self` becomes node
    /// `perm[i]` of the result. `perm` must be a permutation of
    /// `0..len()`. The metamorphic oracle for routing: shortest-path
    /// *distances* are label-independent, so
    /// `self.permuted(p).bfs_distances(p[s])[p[d]] ==
    /// self.bfs_distances(s)[d]` for every pair — while next-hop
    /// *choices* may legitimately differ (ties break on node id).
    pub fn permuted(&self, perm: &[NodeId]) -> Adjacency {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut seen = vec![false; self.n];
        for p in perm {
            assert!(
                p.index() < self.n && !seen[p.index()],
                "not a permutation of 0..n"
            );
            seen[p.index()] = true;
        }
        let mut out = Adjacency::new(self.n);
        for i in 0..self.n {
            let a = NodeId(i as u32);
            for &b in self.neighbors(a) {
                if b > a {
                    out.set_edge(perm[a.index()], perm[b.index()], true);
                }
            }
        }
        out
    }

    /// Edges present in exactly one of `self` (old) and `newer`, as
    /// `(a, b, present_in_newer)` with `a < b`, ordered by `(a, b)`.
    ///
    /// Computed by merging the two sorted neighbour lists per node —
    /// O(n + E_old + E_new), not the O(n²) pair scan — so diffing two
    /// mobility-tick geometries costs what actually changed, not the
    /// whole matrix. Output order matches the historical pair scan
    /// exactly (ascending `a`, then ascending `b`).
    pub fn diff_edges(&self, newer: &Adjacency) -> Vec<(NodeId, NodeId, bool)> {
        assert_eq!(self.n, newer.n, "diff over different node counts");
        let mut out = Vec::new();
        for i in 0..self.n {
            let a = NodeId(i as u32);
            let old_l = self.neighbors(a);
            let new_l = newer.neighbors(a);
            // Skip neighbours b <= a (each undirected edge reported once).
            let mut o = old_l.partition_point(|&b| b <= a);
            let mut w = new_l.partition_point(|&b| b <= a);
            while o < old_l.len() || w < new_l.len() {
                match (old_l.get(o), new_l.get(w)) {
                    (Some(&bo), Some(&bn)) if bo == bn => {
                        o += 1;
                        w += 1;
                    }
                    (Some(&bo), Some(&bn)) if bo < bn => {
                        out.push((a, bo, false));
                        o += 1;
                    }
                    (Some(_), Some(&bn)) => {
                        out.push((a, bn, true));
                        w += 1;
                    }
                    (Some(&bo), None) => {
                        out.push((a, bo, false));
                        o += 1;
                    }
                    (None, Some(&bn)) => {
                        out.push((a, bn, true));
                        w += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
        }
        out
    }

    /// The historical all-pairs diff: an O(n²) `has_edge` scan over every
    /// pair. Output identical to [`Adjacency::diff_edges`]; kept runnable
    /// so the legacy comparison modes reproduce the pre-merge-diff cost
    /// structure they are benchmarked as.
    pub fn diff_edges_scan(&self, newer: &Adjacency) -> Vec<(NodeId, NodeId, bool)> {
        assert_eq!(self.n, newer.n, "diff over different node counts");
        let mut out = Vec::new();
        for i in 0..self.n as u32 {
            for j in (i + 1)..self.n as u32 {
                let (a, b) = (NodeId(i), NodeId(j));
                let now = newer.has_edge(a, b);
                if self.has_edge(a, b) != now {
                    out.push((a, b, now));
                }
            }
        }
        out
    }

    /// BFS hop distances from `src` to every node (`UNREACHABLE` when
    /// disconnected).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u16> {
        let mut dist = vec![UNREACHABLE; self.n];
        self.bfs_distances_into(src, &mut dist);
        dist
    }

    /// BFS into a caller-provided row (avoids re-allocating per source).
    pub fn bfs_distances_into(&self, src: NodeId, dist: &mut Vec<u16>) {
        dist.clear();
        dist.resize(self.n, UNREACHABLE);
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &v in self.neighbors(u) {
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }

    /// All-pairs hop distances (row = source).
    pub fn all_pairs_distances(&self) -> Vec<Vec<u16>> {
        (0..self.n as u32)
            .map(|i| self.bfs_distances(NodeId(i)))
            .collect()
    }

    /// True when every node can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs_distances(NodeId(0))
            .iter()
            .all(|&d| d != UNREACHABLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permuted_graph_preserves_distances_under_relabelling() {
        // A small asymmetric graph: chain 0—1—2—3 plus chord 0—2.
        let mut g = Adjacency::linear(4);
        g.set_edge(NodeId(0), NodeId(2), true);
        // Reverse relabelling: i -> 3 - i.
        let perm: Vec<NodeId> = (0..4).rev().map(NodeId).collect();
        let h = g.permuted(&perm);
        assert_eq!(h.len(), 4);
        for a in 0..4u32 {
            let da = g.bfs_distances(NodeId(a));
            let dp = h.bfs_distances(perm[a as usize]);
            for b in 0..4u32 {
                assert_eq!(
                    da[b as usize],
                    dp[perm[b as usize].index()],
                    "distance {a}->{b} changed under relabelling"
                );
            }
        }
        // The identity permutation is a no-op.
        let id: Vec<NodeId> = (0..4).map(NodeId).collect();
        assert_eq!(g.permuted(&id), g);
    }

    #[test]
    fn linear_chain_structure() {
        let a = Adjacency::linear(5);
        assert!(a.has_edge(NodeId(0), NodeId(1)));
        assert!(a.has_edge(NodeId(3), NodeId(4)));
        assert!(!a.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(a.neighbors(NodeId(2)), vec![NodeId(1), NodeId(3)]);
        assert!(a.is_connected());
    }

    #[test]
    fn edges_are_symmetric() {
        let mut a = Adjacency::new(3);
        a.set_edge(NodeId(0), NodeId(2), true);
        assert!(a.has_edge(NodeId(2), NodeId(0)));
        a.set_edge(NodeId(2), NodeId(0), false);
        assert!(!a.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn neighbor_lists_stay_sorted_and_deduplicated() {
        let mut a = Adjacency::new(5);
        a.set_edge(NodeId(2), NodeId(4), true);
        a.set_edge(NodeId(2), NodeId(0), true);
        a.set_edge(NodeId(2), NodeId(3), true);
        a.set_edge(NodeId(2), NodeId(3), true); // repeat: no duplicate
        assert_eq!(
            a.neighbors(NodeId(2)),
            vec![NodeId(0), NodeId(3), NodeId(4)]
        );
        a.set_edge(NodeId(2), NodeId(3), false);
        assert_eq!(a.neighbors(NodeId(2)), vec![NodeId(0), NodeId(4)]);
    }

    #[test]
    fn diff_edges_reports_changes() {
        let old = Adjacency::linear(4);
        let mut new = Adjacency::linear(4);
        new.set_edge(NodeId(0), NodeId(3), true); // added
        new.set_edge(NodeId(1), NodeId(2), false); // removed
        let mut diff = old.diff_edges(&new);
        diff.sort();
        assert_eq!(
            diff,
            vec![(NodeId(0), NodeId(3), true), (NodeId(1), NodeId(2), false)]
        );
        assert!(new.diff_edges(&new).is_empty());
    }

    /// The merge-based diff must reproduce the historical pair scan —
    /// same set, same `(a, b)` order — on random edge flips.
    #[test]
    fn diff_edges_matches_pair_scan_oracle() {
        use jtp_sim::SimRng;
        let mut rng = SimRng::derive(11, "diff-edges-oracle");
        let n = 17;
        let mut old = Adjacency::linear(n);
        for step in 0..50 {
            let mut new = old.clone();
            for _ in 0..rng.below(6) {
                let a = rng.below(n);
                let b = rng.below(n);
                if a != b {
                    let has = new.has_edge(NodeId(a as u32), NodeId(b as u32));
                    new.set_edge(NodeId(a as u32), NodeId(b as u32), !has);
                }
            }
            assert_eq!(
                old.diff_edges(&new),
                old.diff_edges_scan(&new),
                "step {step}"
            );
            old = new;
        }
    }

    #[test]
    fn bfs_distances_on_chain() {
        let a = Adjacency::linear(6);
        let d = a.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d2 = a.bfs_distances(NodeId(3));
        assert_eq!(d2, vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_components() {
        let mut a = Adjacency::new(4);
        a.set_edge(NodeId(0), NodeId(1), true);
        a.set_edge(NodeId(2), NodeId(3), true);
        assert!(!a.is_connected());
        let d = a.bfs_distances(NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let a = Adjacency::linear(5);
        let apsp = a.all_pairs_distances();
        for i in 0..5u32 {
            assert_eq!(apsp[i as usize], a.bfs_distances(NodeId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn rejects_self_loop() {
        let mut a = Adjacency::new(2);
        a.set_edge(NodeId(1), NodeId(1), true);
    }
}
