//! Lawfulness and degenerate-equivalence pins for the hierarchical
//! backend, against [`ExactBackend`] as the oracle:
//!
//! * **degenerate pins** — one cluster ≡ exact (the intra table *is*
//!   the full table, same tie-break), singleton clusters ≡ exact (every
//!   toward-row *is* an exact next-hop column);
//! * **lawfulness under churn** — on random graphs under random edge
//!   churn, hierarchical routes stay loop-free, deliver exactly when
//!   the exact backend has a route, and respect the stretch bound
//!   `len ≤ d_exact + diam(subgraph(cluster(dst)))`, with
//!   `remaining_hops` a true upper bound on the walk;
//! * **grid convexity** — on grid blocks (geodesically convex), intra-
//!   cluster walks are exactly as long as the exact distance;
//! * **splits** — killing a cluster's cut node splits it into connected
//!   components and every route stays lawful;
//! * **worker determinism** — the repair fan-out is byte-identical for
//!   every worker count.

use jtp_routing::{Adjacency, BackendSelect, ClusterSpec, LinkState, UNREACHABLE};
use jtp_sim::{NodeId, SimDuration, SimRng, SimTime};

fn refresh(now_s: f64, truth: &Adjacency, backends: &mut [&mut LinkState]) {
    for b in backends {
        b.force_refresh_all(SimTime::from_secs_f64(now_s), truth);
    }
}

/// Walk `hier`'s per-hop decisions, asserting no node repeats; returns
/// the hop count, or None when the walk dead-ends.
fn walk_hops(hier: &LinkState, src: NodeId, dst: NodeId) -> Option<u32> {
    let mut seen = vec![false; hier.len()];
    let mut cur = src;
    let mut hops = 0u32;
    while cur != dst {
        assert!(!seen[cur.index()], "loop at {cur:?} on {src:?}->{dst:?}");
        seen[cur.index()] = true;
        cur = hier.next_hop(cur, dst)?;
        hops += 1;
    }
    Some(hops)
}

/// Every pair: reachability matches exact; walks are loop-free, within
/// the stretch bound, and covered by the remaining-hops estimate.
fn assert_lawful(exact: &LinkState, hier: &LinkState, ctx: &str) {
    let n = exact.len();
    let hb = hier.hierarchical().expect("hierarchical backend");
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            let (s, d) = (NodeId(s), NodeId(d));
            if s == d {
                continue;
            }
            let exact_dist = exact.converged_distance(s, d);
            let hops = walk_hops(hier, s, d);
            match exact_dist {
                None => assert!(
                    hops.is_none(),
                    "{ctx}: {s:?}->{d:?} routed but exact says unreachable"
                ),
                Some(dist) => {
                    let hops = hops.unwrap_or_else(|| {
                        panic!("{ctx}: {s:?}->{d:?} undelivered (exact {dist})")
                    });
                    assert!(hops >= dist, "{ctx}: {s:?}->{d:?} beat the shortest path");
                    let bound = dist + hb.cluster_diameter(d);
                    assert!(
                        hops <= bound,
                        "{ctx}: {s:?}->{d:?} took {hops} hops > bound {bound}"
                    );
                    let est = hier
                        .remaining_hops(s, d)
                        .unwrap_or_else(|| panic!("{ctx}: {s:?}->{d:?} estimate missing"));
                    assert!(
                        est >= hops,
                        "{ctx}: {s:?}->{d:?} estimate {est} under-counts {hops} hops"
                    );
                }
            }
        }
    }
}

fn mesh(n: usize, seed: u64, extra: usize) -> Adjacency {
    let mut rng = SimRng::derive(seed, "hier-mesh");
    let mut a = Adjacency::linear(n);
    for _ in 0..extra {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            a.set_edge(NodeId(u as u32), NodeId(v as u32), true);
        }
    }
    a
}

fn all_next_hops(r: &LinkState) -> Vec<Option<NodeId>> {
    let n = r.len() as u32;
    (0..n)
        .flat_map(|s| (0..n).map(move |d| (s, d)))
        .map(|(s, d)| r.next_hop(NodeId(s), NodeId(d)))
        .collect()
}

#[test]
fn one_cluster_is_route_identical_to_exact() {
    let a = mesh(12, 7, 8);
    let exact = LinkState::new(&a, SimDuration::from_secs(5));
    let hier = LinkState::with_backend(
        &a,
        SimDuration::from_secs(5),
        &BackendSelect::Hierarchical(ClusterSpec::Assignment(vec![0; 12])),
    );
    assert_eq!(
        all_next_hops(&exact),
        all_next_hops(&hier),
        "one cluster: intra table must reproduce the exact table"
    );
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, 1);
}

#[test]
fn singleton_clusters_are_route_identical_to_exact() {
    let a = mesh(11, 9, 7);
    let exact = LinkState::new(&a, SimDuration::from_secs(5));
    // clusters > nodes degenerates to one singleton per node: every
    // toward-row is an exact next-hop column.
    let labels: Vec<u32> = (0..11).collect();
    let hier = LinkState::with_backend(
        &a,
        SimDuration::from_secs(5),
        &BackendSelect::Hierarchical(ClusterSpec::Assignment(labels)),
    );
    assert_eq!(
        all_next_hops(&exact),
        all_next_hops(&hier),
        "singletons: toward rows must reproduce exact next hops"
    );
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, 11);
}

#[test]
fn oversized_auto_target_is_one_cluster() {
    // Auto target beyond n collapses to a single cluster on a connected
    // graph — and must therefore match exact too.
    let a = mesh(10, 21, 6);
    let exact = LinkState::new(&a, SimDuration::from_secs(5));
    let hier = LinkState::with_backend(
        &a,
        SimDuration::from_secs(5),
        &BackendSelect::Hierarchical(ClusterSpec::Auto { target: 1000 }),
    );
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, 1);
    assert_eq!(all_next_hops(&exact), all_next_hops(&hier));
}

#[test]
fn random_churn_stays_lawful() {
    let n = 18;
    let mut rng = SimRng::derive(41, "hier-churn");
    let mut truth = mesh(n, 3, 10);
    let mut exact = LinkState::new(&truth, SimDuration::from_secs(1));
    let mut hier = LinkState::with_backend(
        &truth,
        SimDuration::from_secs(1),
        &BackendSelect::Hierarchical(ClusterSpec::Auto { target: 0 }),
    );
    assert_lawful(&exact, &hier, "initial");
    for step in 0..60 {
        for _ in 0..1 + rng.below(3) {
            let u = rng.below(n);
            let v = rng.below(n);
            if u != v {
                let has = truth.has_edge(NodeId(u as u32), NodeId(v as u32));
                truth.set_edge(NodeId(u as u32), NodeId(v as u32), !has);
            }
        }
        refresh(step as f64 + 1.0, &truth, &mut [&mut exact, &mut hier]);
        assert_lawful(&exact, &hier, &format!("step {step}"));
    }
    let s = hier.stats();
    assert!(s.bfs_repaired > 0, "cluster rows must repair in place");
    assert!(s.bfs_skipped > 0, "screen must clear unaffected rows");
}

#[test]
fn grid_block_intra_routes_match_exact_distance() {
    // An 8×8 grid clustered into 2×2 blocks of 4×4 nodes. Blocks are
    // geodesically convex, so same-block walks must be *exactly* as
    // long as the exact shortest path — the intra-match pin.
    let (cols, rows) = (8usize, 8usize);
    let n = cols * rows;
    let mut a = Adjacency::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as u32;
            if c + 1 < cols {
                a.set_edge(NodeId(v), NodeId(v + 1), true);
            }
            if r + 1 < rows {
                a.set_edge(NodeId(v), NodeId(v + cols as u32), true);
            }
        }
    }
    let labels: Vec<u32> = (0..n)
        .map(|v| {
            let (r, c) = (v / cols, v % cols);
            ((r / 4) * 2 + c / 4) as u32
        })
        .collect();
    let exact = LinkState::new(&a, SimDuration::from_secs(5));
    let hier = LinkState::with_backend(
        &a,
        SimDuration::from_secs(5),
        &BackendSelect::Hierarchical(ClusterSpec::Assignment(labels)),
    );
    let hb = hier.hierarchical().unwrap();
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, 4);
    let mut intra_pairs = 0;
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d || hb.cluster_id(NodeId(s)) != hb.cluster_id(NodeId(d)) {
                continue;
            }
            intra_pairs += 1;
            let dist = exact.converged_distance(NodeId(s), NodeId(d)).unwrap();
            let hops = walk_hops(&hier, NodeId(s), NodeId(d)).unwrap();
            assert_eq!(hops, dist, "intra-block {s}->{d} must match exact length");
            assert_eq!(
                hier.remaining_hops(NodeId(s), NodeId(d)),
                Some(dist),
                "intra-block estimate is the exact subgraph distance"
            );
        }
    }
    assert_eq!(intra_pairs, 4 * 16 * 15);
    assert_lawful(&exact, &hier, "grid");
}

#[test]
fn cut_node_death_splits_cluster_and_stays_lawful() {
    // A 12-chain in three 4-blocks; killing node 5 severs its block
    // {4,5,6,7} into {4}, {6,7} (5 isolates), which must split.
    let n = 12;
    let truth0 = Adjacency::linear(n);
    let labels: Vec<u32> = (0..n as u32).map(|v| v / 4).collect();
    let mut exact = LinkState::new(&truth0, SimDuration::from_secs(1));
    let mut hier = LinkState::with_backend(
        &truth0,
        SimDuration::from_secs(1),
        &BackendSelect::Hierarchical(ClusterSpec::Assignment(labels)),
    );
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, 3);

    let mut dead = truth0.clone();
    dead.set_edge(NodeId(4), NodeId(5), false);
    dead.set_edge(NodeId(5), NodeId(6), false);
    refresh(1.0, &dead, &mut [&mut exact, &mut hier]);
    let hs = hier.hierarchy_stats().unwrap();
    assert!(hs.splits >= 2, "block {{4..7}} must split, got {hs:?}");
    assert_lawful(&exact, &hier, "after death");

    // Heal: clusters never merge — the split survives — but routes are
    // lawful again across the restored chain.
    refresh(2.0, &truth0, &mut [&mut exact, &mut hier]);
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, hs.clusters);
    assert_lawful(&exact, &hier, "after heal");
    for d in 0..n as u32 {
        if d != 0 {
            assert!(walk_hops(&hier, NodeId(0), NodeId(d)).is_some());
        }
    }
}

#[test]
fn repair_fanout_is_byte_identical_across_workers() {
    let n = 20;
    for workers in [2usize, 4, 7] {
        let mut rng = SimRng::derive(99, "hier-workers");
        let mut truth = mesh(n, 5, 12);
        let mk = || {
            LinkState::with_backend(
                &truth,
                SimDuration::from_secs(1),
                &BackendSelect::Hierarchical(ClusterSpec::Auto { target: 4 }),
            )
        };
        let mut seq = mk();
        let mut par = mk();
        par.set_workers(workers);
        for step in 0..40 {
            for _ in 0..1 + rng.below(3) {
                let u = rng.below(n);
                let v = rng.below(n);
                if u != v {
                    let has = truth.has_edge(NodeId(u as u32), NodeId(v as u32));
                    truth.set_edge(NodeId(u as u32), NodeId(v as u32), !has);
                }
            }
            refresh(step as f64 + 1.0, &truth, &mut [&mut seq, &mut par]);
            assert_eq!(
                all_next_hops(&seq),
                all_next_hops(&par),
                "workers={workers} step {step}: routes diverged"
            );
        }
        let (a, b) = (seq.stats(), par.stats());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "workers={workers}");
        assert!(par.parallel_stats().fanouts > 0, "fan-out must engage");
        assert_eq!(seq.parallel_stats().fanouts, 0);
    }
}

#[test]
fn disconnected_assignment_is_split_at_construction() {
    // Label 0 covers two disconnected chain segments: the constructor
    // must split it so the intra invariant holds from t = 0.
    let mut a = Adjacency::linear(8);
    a.set_edge(NodeId(3), NodeId(4), false);
    let hier = LinkState::with_backend(
        &a,
        SimDuration::from_secs(5),
        &BackendSelect::Hierarchical(ClusterSpec::Assignment(vec![0; 8])),
    );
    assert_eq!(hier.hierarchy_stats().unwrap().clusters, 2);
    let exact = LinkState::new(&a, SimDuration::from_secs(5));
    assert_lawful(&exact, &hier, "split assignment");
}

#[test]
fn estimate_never_under_counts_unreachable_pairs() {
    let mut a = Adjacency::linear(6);
    a.set_edge(NodeId(2), NodeId(3), false);
    let hier = LinkState::with_backend(
        &a,
        SimDuration::from_secs(5),
        &BackendSelect::Hierarchical(ClusterSpec::Auto { target: 3 }),
    );
    assert_eq!(hier.remaining_hops(NodeId(0), NodeId(5)), None);
    assert_eq!(hier.next_hop(NodeId(0), NodeId(5)), None);
    assert!(hier.stats().no_route > 0);
    let _ = UNREACHABLE; // distances stay u16-encoded end to end
}
