//! Property-based tests of the link-state routing invariants.

use jtp_routing::{Adjacency, BackendSelect, ClusterSpec, LinkState};
use jtp_sim::{NodeId, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// Build a random connected graph over `n` nodes from a seed: a random
/// spanning chain plus extra random edges.
fn random_connected(n: usize, seed: u64, extra_edges: usize) -> Adjacency {
    let mut rng = SimRng::new(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut adj = Adjacency::new(n);
    for w in order.windows(2) {
        adj.set_edge(NodeId(w[0]), NodeId(w[1]), true);
    }
    for _ in 0..extra_edges {
        let a = rng.below(n) as u32;
        let b = rng.below(n) as u32;
        if a != b {
            adj.set_edge(NodeId(a), NodeId(b), true);
        }
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On a connected graph with consistent views, every pair routes, the
    /// hop-by-hop walk terminates, and its length equals the BFS distance.
    #[test]
    fn routes_follow_shortest_paths(
        n in 2usize..15,
        seed in any::<u64>(),
        extra in 0usize..10,
    ) {
        let adj = random_connected(n, seed, extra);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        let dist = adj.all_pairs_distances();
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d {
                    continue;
                }
                let path = ls.trace_path(NodeId(s), NodeId(d));
                prop_assert!(path.is_some(), "no route {s}->{d}");
                let path = path.unwrap();
                prop_assert_eq!(
                    path.len() - 1,
                    dist[s as usize][d as usize] as usize,
                    "path not shortest"
                );
                prop_assert_eq!(path[0], NodeId(s));
                prop_assert_eq!(*path.last().unwrap(), NodeId(d));
                // Consecutive path nodes are adjacent.
                for w in path.windows(2) {
                    prop_assert!(adj.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// Forward and reverse walks always have equal length; on chains
    /// (no equal-cost alternatives) they coincide exactly — the symmetric
    /// routes JTP's caching exploits. On dense graphs equal-cost
    /// tie-breaking may pick different shortest paths per direction,
    /// which the opportunistic cache design tolerates.
    #[test]
    fn reverse_routes_have_equal_length(
        n in 2usize..12,
        seed in any::<u64>(),
        extra in 0usize..8,
    ) {
        let adj = random_connected(n, seed, extra);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        for s in 0..n as u32 {
            for d in (s + 1)..n as u32 {
                let fwd = ls.trace_path(NodeId(s), NodeId(d)).unwrap();
                let rev = ls.trace_path(NodeId(d), NodeId(s)).unwrap();
                prop_assert_eq!(fwd.len(), rev.len(), "{}->{} length asymmetry", s, d);
            }
        }
    }

    /// On chain topologies routes are exactly palindromic.
    #[test]
    fn chain_routes_are_exactly_symmetric(n in 2usize..20) {
        let adj = Adjacency::linear(n);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        for s in 0..n as u32 {
            for d in (s + 1)..n as u32 {
                let fwd = ls.trace_path(NodeId(s), NodeId(d)).unwrap();
                let mut rev = ls.trace_path(NodeId(d), NodeId(s)).unwrap();
                rev.reverse();
                prop_assert_eq!(fwd, rev);
            }
        }
    }

    /// remaining_hops agrees with the traced path length and decreases by
    /// exactly one along the route.
    #[test]
    fn remaining_hops_decrease_monotonically(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let adj = random_connected(n, seed, 4);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        let dst = NodeId(n as u32 - 1);
        let path = ls.trace_path(NodeId(0), dst).unwrap();
        for (i, node) in path.iter().enumerate() {
            let remaining = ls.remaining_hops(*node, dst).unwrap();
            prop_assert_eq!(remaining as usize, path.len() - 1 - i);
        }
    }

    /// The hierarchical backend on random graphs under random edge churn
    /// (which may disconnect the graph): against the exact backend as
    /// oracle, every walk is loop-free, delivers exactly when exact has
    /// a route, stays within the stretch bound `d_exact +
    /// diam(cluster(dst))`, and `remaining_hops` never under-counts the
    /// walk. The auto cluster target is itself randomised (0 = ⌈√n⌉).
    #[test]
    fn hierarchical_stays_lawful_under_random_churn(
        n in 4usize..14,
        seed in any::<u64>(),
        extra in 0usize..8,
        target in 0usize..6,
    ) {
        let mut adj = random_connected(n, seed, extra);
        let ival = SimDuration::from_secs(1);
        let mut exact = LinkState::new(&adj, ival);
        let mut hier = LinkState::with_backend(
            &adj,
            ival,
            &BackendSelect::Hierarchical(ClusterSpec::Auto { target }),
        );
        let mut rng = SimRng::derive(seed, "proptest-hier-churn");
        for round in 0..4u64 {
            if round > 0 {
                // Toggle 1–2 random edges; disconnection is in scope.
                for _ in 0..1 + rng.below(2) {
                    let u = rng.below(n);
                    let v = rng.below(n);
                    if u != v {
                        let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                        adj.set_edge(u, v, !adj.has_edge(u, v));
                    }
                }
                let now = SimTime::from_secs_f64(round as f64);
                exact.force_refresh_all(now, &adj);
                hier.force_refresh_all(now, &adj);
            }
            let hb = hier.hierarchical().expect("hierarchical backend");
            for s in 0..n as u32 {
                for d in 0..n as u32 {
                    if s == d {
                        continue;
                    }
                    let (src, dst) = (NodeId(s), NodeId(d));
                    // Manual walk with a seen-set: loop-freedom is the
                    // property under test, not trace_path's guard.
                    let mut seen = vec![false; n];
                    let mut cur = src;
                    let mut hops = Some(0u32);
                    while cur != dst {
                        prop_assert!(!seen[cur.index()], "loop at {:?} on {s}->{d}", cur);
                        seen[cur.index()] = true;
                        match hier.next_hop(cur, dst) {
                            Some(next) => {
                                cur = next;
                                hops = hops.map(|h| h + 1);
                            }
                            None => {
                                hops = None;
                                break;
                            }
                        }
                    }
                    match exact.converged_distance(src, dst) {
                        None => prop_assert!(
                            hops.is_none(),
                            "{s}->{d} routed but exact says unreachable"
                        ),
                        Some(dist) => {
                            let hops = hops.expect("undelivered despite exact route");
                            let bound = dist + hb.cluster_diameter(dst);
                            prop_assert!(
                                hops >= dist && hops <= bound,
                                "{s}->{d}: {} hops outside [{}, {}]",
                                hops,
                                dist,
                                bound
                            );
                            let est = hier.remaining_hops(src, dst).expect("estimate");
                            prop_assert!(
                                est >= hops,
                                "{s}->{d}: estimate {} under-counts {} hops",
                                est,
                                hops
                            );
                        }
                    }
                }
            }
        }
    }

    /// Degenerate clusterings are route-identical to exact on random
    /// graphs: one all-nodes cluster (the intra table is the full
    /// table), singleton labels, and an auto target beyond n (which
    /// collapses to one cluster on a connected graph).
    #[test]
    fn degenerate_clusterings_route_identical_to_exact(
        n in 2usize..12,
        seed in any::<u64>(),
        extra in 0usize..8,
    ) {
        let adj = random_connected(n, seed, extra);
        let ival = SimDuration::from_secs(5);
        let exact = LinkState::new(&adj, ival);
        let specs = [
            ClusterSpec::Assignment(vec![0; n]),
            ClusterSpec::Assignment((0..n as u32).collect()),
            ClusterSpec::Auto { target: n + 100 },
        ];
        for spec in specs {
            let hier =
                LinkState::with_backend(&adj, ival, &BackendSelect::Hierarchical(spec));
            for s in 0..n as u32 {
                for d in 0..n as u32 {
                    prop_assert_eq!(
                        hier.next_hop(NodeId(s), NodeId(d)),
                        exact.next_hop(NodeId(s), NodeId(d)),
                        "degenerate clustering diverged for {}->{}",
                        s,
                        d
                    );
                }
            }
        }
    }
}
