//! Property-based tests of the link-state routing invariants.

use jtp_routing::{Adjacency, LinkState};
use jtp_sim::{NodeId, SimDuration, SimRng};
use proptest::prelude::*;

/// Build a random connected graph over `n` nodes from a seed: a random
/// spanning chain plus extra random edges.
fn random_connected(n: usize, seed: u64, extra_edges: usize) -> Adjacency {
    let mut rng = SimRng::new(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut adj = Adjacency::new(n);
    for w in order.windows(2) {
        adj.set_edge(NodeId(w[0]), NodeId(w[1]), true);
    }
    for _ in 0..extra_edges {
        let a = rng.below(n) as u32;
        let b = rng.below(n) as u32;
        if a != b {
            adj.set_edge(NodeId(a), NodeId(b), true);
        }
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On a connected graph with consistent views, every pair routes, the
    /// hop-by-hop walk terminates, and its length equals the BFS distance.
    #[test]
    fn routes_follow_shortest_paths(
        n in 2usize..15,
        seed in any::<u64>(),
        extra in 0usize..10,
    ) {
        let adj = random_connected(n, seed, extra);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        let dist = adj.all_pairs_distances();
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d {
                    continue;
                }
                let path = ls.trace_path(NodeId(s), NodeId(d));
                prop_assert!(path.is_some(), "no route {s}->{d}");
                let path = path.unwrap();
                prop_assert_eq!(
                    path.len() - 1,
                    dist[s as usize][d as usize] as usize,
                    "path not shortest"
                );
                prop_assert_eq!(path[0], NodeId(s));
                prop_assert_eq!(*path.last().unwrap(), NodeId(d));
                // Consecutive path nodes are adjacent.
                for w in path.windows(2) {
                    prop_assert!(adj.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// Forward and reverse walks always have equal length; on chains
    /// (no equal-cost alternatives) they coincide exactly — the symmetric
    /// routes JTP's caching exploits. On dense graphs equal-cost
    /// tie-breaking may pick different shortest paths per direction,
    /// which the opportunistic cache design tolerates.
    #[test]
    fn reverse_routes_have_equal_length(
        n in 2usize..12,
        seed in any::<u64>(),
        extra in 0usize..8,
    ) {
        let adj = random_connected(n, seed, extra);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        for s in 0..n as u32 {
            for d in (s + 1)..n as u32 {
                let fwd = ls.trace_path(NodeId(s), NodeId(d)).unwrap();
                let rev = ls.trace_path(NodeId(d), NodeId(s)).unwrap();
                prop_assert_eq!(fwd.len(), rev.len(), "{}->{} length asymmetry", s, d);
            }
        }
    }

    /// On chain topologies routes are exactly palindromic.
    #[test]
    fn chain_routes_are_exactly_symmetric(n in 2usize..20) {
        let adj = Adjacency::linear(n);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        for s in 0..n as u32 {
            for d in (s + 1)..n as u32 {
                let fwd = ls.trace_path(NodeId(s), NodeId(d)).unwrap();
                let mut rev = ls.trace_path(NodeId(d), NodeId(s)).unwrap();
                rev.reverse();
                prop_assert_eq!(fwd, rev);
            }
        }
    }

    /// remaining_hops agrees with the traced path length and decreases by
    /// exactly one along the route.
    #[test]
    fn remaining_hops_decrease_monotonically(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let adj = random_connected(n, seed, 4);
        let ls = LinkState::new(&adj, SimDuration::from_secs(5));
        let dst = NodeId(n as u32 - 1);
        let path = ls.trace_path(NodeId(0), dst).unwrap();
        for (i, node) in path.iter().enumerate() {
            let remaining = ls.remaining_hops(*node, dst).unwrap();
            prop_assert_eq!(remaining as usize, path.len() - 1 - i);
        }
    }
}
